// Timing-server tests: frame-codec golden bytes and malformed-input
// rejection, JobQueue admission control, and live-daemon integration --
// concurrent clients bit-identical to direct runs, per-job deadlines
// cancelling only their own client, failpoint robustness (a faulted or
// malformed client frame never kills the daemon), and graceful shutdown.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "server/client.hpp"
#include "server/job_queue.hpp"
#include "server/jobs.hpp"
#include "server/lane_pool.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "util/cancel.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/serialize.hpp"

namespace sva {
namespace {

/// Flow construction runs library OPC; share one instance across tests.
const SvaFlow& shared_flow() {
  static const SvaFlow* flow = new SvaFlow(FlowConfig{});
  return *flow;
}

/// Drop the one nondeterministic line of an analyze run -- the
/// "(N circuits, T threads, X s)" wall-time trailer -- exactly as
/// scripts/check.sh does before comparing outputs.
std::string strip_variance(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("circuits, ") != std::string::npos &&
        line.size() >= 2 && line.compare(line.size() - 2, 2, "s)") == 0)
      continue;
    out += line;
    out += '\n';
  }
  return out;
}

ProtoStatus decode_status(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const ProtocolError& e) {
    return e.status();
  } catch (...) {
    return ProtoStatus::Ok;
  }
}

/// Decode and return the ProtoStatus a malformed payload is rejected
/// with; Ok means it unexpectedly decoded (or threw the wrong type).
ProtoStatus reject_status(std::string_view payload) {
  try {
    decode_frame_payload(payload);
    return ProtoStatus::Ok;
  } catch (...) {
    return decode_status(std::current_exception());
  }
}

// --- frame codec ------------------------------------------------------

TEST(ProtocolCodecTest, GoldenPingFrameBytes) {
  // The full wire bytes of an empty-body ping, fixed by the protocol:
  // magic "SVAF", payload length 21, version 4, type 5, fnv1a64 of the
  // empty body, and a zero-length body.  Platform-stable because the
  // codec is fixed little-endian.
  static const unsigned char kGolden[] = {
      0x53, 0x56, 0x41, 0x46, 0x15, 0x00, 0x00, 0x00,  // "SVAF", len=21
      0x04, 0x00, 0x00, 0x00,                          // version 4
      0x05,                                            // PingRequest
      0xdf, 0xb7, 0x01, 0x86, 0x4c, 0xbd, 0x63, 0xaf,  // fnv1a64("")
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // body len 0
  };
  const std::string wire = encode_frame({MsgType::PingRequest, ""});
  ASSERT_EQ(wire.size(), sizeof(kGolden));
  EXPECT_EQ(wire, std::string(reinterpret_cast<const char*>(kGolden),
                              sizeof(kGolden)));

  const Frame decoded = decode_frame_payload(wire.substr(8));
  EXPECT_EQ(decoded.type, MsgType::PingRequest);
  EXPECT_TRUE(decoded.body.empty());
}

TEST(ProtocolCodecTest, GoldenAnalyzeFrameBytes) {
  AnalyzeRequest req;
  req.spec.circuits = {"C17"};
  static const unsigned char kGolden[] = {
      0x53, 0x56, 0x41, 0x46, 0x31, 0x00, 0x00, 0x00,  // "SVAF", len=49
      0x04, 0x00, 0x00, 0x00,                          // version 4
      0x01,                                            // AnalyzeRequest
      0x56, 0x14, 0x4f, 0x19, 0xe8, 0x03, 0x7d, 0x31,  // body checksum
      0x1c, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // body len 28
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // 1 circuit
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // name len 3
      0x43, 0x31, 0x37,                                 // "C17"
      0x00,                                             // strict=false
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // deadline_ms=0
  };
  const std::string wire =
      encode_frame({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  ASSERT_EQ(wire.size(), sizeof(kGolden));
  EXPECT_EQ(wire, std::string(reinterpret_cast<const char*>(kGolden),
                              sizeof(kGolden)));

  const Frame decoded = decode_frame_payload(wire.substr(8));
  const AnalyzeRequest back = decode_analyze_request(decoded.body);
  ASSERT_EQ(back.spec.circuits.size(), 1u);
  EXPECT_EQ(back.spec.circuits[0], "C17");
  EXPECT_FALSE(back.spec.strict);
  EXPECT_EQ(back.deadline_ms, 0u);
}

TEST(ProtocolCodecTest, RequestBodiesRoundTrip) {
  AnalyzeRequest a;
  a.spec.circuits = {"C432", "C6288"};
  a.spec.strict = true;
  a.deadline_ms = 2500;
  const AnalyzeRequest a2 = decode_analyze_request(encode_analyze_request(a));
  EXPECT_EQ(a2.spec.circuits, a.spec.circuits);
  EXPECT_EQ(a2.spec.strict, a.spec.strict);
  EXPECT_EQ(a2.deadline_ms, a.deadline_ms);

  OptimizeRequest o;
  o.spec.circuit = "C1355";
  o.spec.clock_period_ps = 812.5;
  o.spec.max_moves = 42;
  o.spec.window_ps = 37.25;
  o.spec.corner_mode = 1;
  o.spec.csv_path = "out/traj.csv";
  o.deadline_ms = 99;
  const OptimizeRequest o2 =
      decode_optimize_request(encode_optimize_request(o));
  EXPECT_EQ(o2.spec.circuit, o.spec.circuit);
  EXPECT_EQ(o2.spec.clock_period_ps, o.spec.clock_period_ps);
  EXPECT_EQ(o2.spec.max_moves, o.spec.max_moves);
  EXPECT_EQ(o2.spec.window_ps, o.spec.window_ps);
  EXPECT_EQ(o2.spec.corner_mode, o.spec.corner_mode);
  EXPECT_EQ(o2.spec.csv_path, o.spec.csv_path);
  EXPECT_EQ(o2.deadline_ms, o.deadline_ms);

  SstaRequest s;
  s.spec.circuit = "C880";
  s.spec.clock_period_ps = 3100.0;
  s.spec.quantile = 0.9987;
  s.spec.mc_samples = 500;
  s.spec.global_share = 0.25;
  s.spec.csv_path = "out/crit.csv";
  s.deadline_ms = 1200;
  const SstaRequest s2 = decode_ssta_request(encode_ssta_request(s));
  EXPECT_EQ(s2.spec.circuit, s.spec.circuit);
  EXPECT_EQ(s2.spec.clock_period_ps, s.spec.clock_period_ps);
  EXPECT_EQ(s2.spec.quantile, s.spec.quantile);
  EXPECT_EQ(s2.spec.mc_samples, s.spec.mc_samples);
  EXPECT_EQ(s2.spec.global_share, s.spec.global_share);
  EXPECT_EQ(s2.spec.csv_path, s.spec.csv_path);
  EXPECT_EQ(s2.deadline_ms, s.deadline_ms);
}

TEST(ProtocolCodecTest, SstaRequestRejectsOutOfRangeFields) {
  SstaRequest s;
  s.spec.circuit = "C432";
  s.spec.quantile = 1.25;
  EXPECT_THROW(decode_ssta_request(encode_ssta_request(s)), ProtocolError);
  s.spec.quantile = 0.999;
  s.spec.global_share = -0.5;
  EXPECT_THROW(decode_ssta_request(encode_ssta_request(s)), ProtocolError);
}

TEST(ProtocolCodecTest, ResponseBodiesRoundTrip) {
  JobResult result;
  result.exit_code = 3;
  result.output = "corner table\nwith lines\n";
  result.artifacts.push_back({"eco_trajectory.csv", "a,b\n1,2\n"});
  const JobResult r2 = decode_result_response(encode_result_response(result));
  EXPECT_EQ(r2.exit_code, result.exit_code);
  EXPECT_EQ(r2.output, result.output);
  ASSERT_EQ(r2.artifacts.size(), 1u);
  EXPECT_EQ(r2.artifacts[0].path, result.artifacts[0].path);
  EXPECT_EQ(r2.artifacts[0].bytes, result.artifacts[0].bytes);

  const BusyResponse busy =
      decode_busy_response(encode_busy_response({7, 8, 450}));
  EXPECT_EQ(busy.queue_depth, 7u);
  EXPECT_EQ(busy.max_depth, 8u);
  EXPECT_EQ(busy.retry_after_ms, 450u);

  HealthResponse health;
  health.uptime_ms = 12345;
  health.queue_depth = 2;
  health.queue_capacity = 8;
  health.jobs_served = 41;
  health.lanes_poisoned = 3;
  health.lane_states = {char(LaneState::Idle), char(LaneState::Running),
                        char(LaneState::Wedged)};
  const HealthResponse h2 =
      decode_health_response(encode_health_response(health));
  EXPECT_EQ(h2.uptime_ms, health.uptime_ms);
  EXPECT_EQ(h2.queue_depth, health.queue_depth);
  EXPECT_EQ(h2.queue_capacity, health.queue_capacity);
  EXPECT_EQ(h2.jobs_served, health.jobs_served);
  EXPECT_EQ(h2.lanes_poisoned, health.lanes_poisoned);
  EXPECT_EQ(h2.lane_states, health.lane_states);

  const ErrorResponse err = decode_error_response(
      encode_error_response({ProtoStatus::VersionMismatch, "nope"}));
  EXPECT_EQ(err.code, ProtoStatus::VersionMismatch);
  EXPECT_EQ(err.message, "nope");

  const CancelledResponse c = decode_cancelled_response(
      encode_cancelled_response({3, "run cancelled (deadline)\n"}));
  EXPECT_EQ(c.reason, 3);
  EXPECT_EQ(c.output, "run cancelled (deadline)\n");

  const MetricsResponse m = decode_metrics_response(
      encode_metrics_response({"  counter x\n", "{\"counters\":{}}"}));
  EXPECT_EQ(m.rendered, "  counter x\n");
  EXPECT_EQ(m.json, "{\"counters\":{}}");
}

TEST(ProtocolCodecTest, EveryTruncationOfAValidPayloadIsRejected) {
  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  const std::string wire =
      encode_frame({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  const std::string payload = wire.substr(8);
  for (std::size_t n = 0; n < payload.size(); ++n) {
    const ProtoStatus status = reject_status(payload.substr(0, n));
    EXPECT_EQ(status, ProtoStatus::Truncated) << "prefix length " << n;
  }
}

TEST(ProtocolCodecTest, VersionMismatchIsRefusedExplicitly) {
  ByteWriter payload;
  payload.u32(kProtocolVersion + 1);
  payload.u8(static_cast<std::uint8_t>(MsgType::PingRequest));
  payload.u64(fnv1a64_words("", 0));
  payload.str("");
  EXPECT_EQ(reject_status(payload.bytes()), ProtoStatus::VersionMismatch);
}

TEST(ProtocolCodecTest, UnknownTypeIsRejected) {
  ByteWriter payload;
  payload.u32(kProtocolVersion);
  payload.u8(200);  // neither request nor response
  payload.u64(fnv1a64_words("", 0));
  payload.str("");
  EXPECT_EQ(reject_status(payload.bytes()), ProtoStatus::BadType);
}

TEST(ProtocolCodecTest, CorruptBodyFailsTheChecksum) {
  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  const std::string wire =
      encode_frame({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  std::string payload = wire.substr(8);
  payload.back() ^= 0x01;  // inside the body (deadline field)
  EXPECT_EQ(reject_status(payload), ProtoStatus::BadChecksum);
}

TEST(ProtocolCodecTest, GarbageBodyIsRejectedAsBadBody) {
  // A huge circuit count that cannot fit in the remaining bytes.
  ByteWriter body;
  body.u64(~0ull);
  try {
    decode_analyze_request(body.bytes());
    FAIL() << "garbage body decoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadBody);
  }
  // A truncated body maps to BadBody too (the envelope was intact).
  const std::string valid = encode_analyze_request(AnalyzeRequest{});
  try {
    decode_analyze_request(std::string_view(valid).substr(0, 3));
    FAIL() << "truncated body decoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadBody);
  }
}

TEST(ProtocolCodecTest, OversizedFrameIsRefusedAtEncode) {
  Frame frame{MsgType::ResultResponse,
              std::string(kMaxFramePayload, 'x')};
  try {
    encode_frame(frame);
    FAIL() << "oversized frame encoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::Oversized);
  }
}

// --- batch frames -----------------------------------------------------

TEST(ProtocolCodecTest, BatchBodiesRoundTrip) {
  AnalyzeRequest a;
  a.spec.circuits = {"C432"};
  SstaRequest s;
  s.spec.circuit = "C880";
  BatchRequest req;
  req.items.push_back({static_cast<std::uint8_t>(MsgType::AnalyzeRequest),
                       encode_analyze_request(a)});
  req.items.push_back({static_cast<std::uint8_t>(MsgType::SstaRequest),
                       encode_ssta_request(s)});
  const BatchRequest back = decode_batch_request(encode_batch_request(req));
  ASSERT_EQ(back.items.size(), 2u);
  EXPECT_EQ(back.items[0].kind, req.items[0].kind);
  EXPECT_EQ(back.items[0].body, req.items[0].body);
  EXPECT_EQ(back.items[1].kind, req.items[1].kind);
  EXPECT_EQ(back.items[1].body, req.items[1].body);

  JobResult result;
  result.output = "table\n";
  BatchResponse resp;
  resp.slots.push_back({MsgType::ResultResponse,
                        encode_result_response(result)});
  resp.slots.push_back({MsgType::ErrorResponse,
                        encode_error_response({ProtoStatus::BadBody, "bad"})});
  resp.slots.push_back({MsgType::BusyResponse,
                        encode_busy_response({1, 8, 50})});
  const BatchResponse rback =
      decode_batch_response(encode_batch_response(resp));
  ASSERT_EQ(rback.slots.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rback.slots[i].type, resp.slots[i].type);
    EXPECT_EQ(rback.slots[i].body, resp.slots[i].body);
  }
}

TEST(ProtocolCodecTest, BatchRequestRejectsMalformedEnvelopes) {
  // Empty batch.
  ByteWriter empty;
  empty.u64(0);
  try {
    decode_batch_request(empty.bytes());
    FAIL() << "empty batch decoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadBody);
  }
  // Item count over the protocol limit.
  ByteWriter oversized;
  oversized.u64(kMaxBatchItems + 1);
  try {
    decode_batch_request(oversized.bytes());
    FAIL() << "oversized batch decoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadBody);
  }
  // Plausible count with no item bytes behind it.
  ByteWriter hollow;
  hollow.u64(3);
  try {
    decode_batch_request(hollow.bytes());
    FAIL() << "hollow batch decoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadBody);
  }
  // A response-only type is refused as a batch slot on the way back.
  ByteWriter badslot;
  badslot.u64(1);
  badslot.u8(static_cast<std::uint8_t>(MsgType::AnalyzeRequest));
  badslot.str("");
  try {
    decode_batch_response(badslot.bytes());
    FAIL() << "request-typed slot decoded";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadBody);
  }
}

TEST(ProtocolCodecTest, EveryTruncationOfABatchFrameIsRejected) {
  // The v4 envelope defends the batch payload exactly like any other
  // frame: every proper prefix is Truncated, a flipped body byte is
  // BadChecksum -- never a partial decode.
  AnalyzeRequest a;
  a.spec.circuits = {"C17"};
  BatchRequest req;
  req.items.push_back({static_cast<std::uint8_t>(MsgType::AnalyzeRequest),
                       encode_analyze_request(a)});
  const std::string wire =
      encode_frame({MsgType::BatchRequest, encode_batch_request(req)});
  const std::string payload = wire.substr(8);
  for (std::size_t n = 0; n < payload.size(); ++n) {
    EXPECT_EQ(reject_status(payload.substr(0, n)), ProtoStatus::Truncated)
        << "prefix length " << n;
  }
  std::string corrupt = payload;
  corrupt.back() ^= 0x01;
  EXPECT_EQ(reject_status(corrupt), ProtoStatus::BadChecksum);
}

// --- endpoint URIs ----------------------------------------------------

TEST(EndpointTest, ParsesUnixTcpAndBareForms) {
  Endpoint ep = parse_endpoint("unix:/tmp/sva.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(ep.path, "/tmp/sva.sock");

  ep = parse_endpoint("/tmp/bare.sock");  // back-compat shorthand
  EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(ep.path, "/tmp/bare.sock");

  ep = parse_endpoint("tcp:127.0.0.1:9321");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 9321);

  EXPECT_THROW(parse_endpoint(""), SocketError);
  EXPECT_THROW(parse_endpoint("unix:"), SocketError);
  EXPECT_THROW(parse_endpoint("tcp:127.0.0.1"), SocketError);
  EXPECT_THROW(parse_endpoint("tcp::9000"), SocketError);
  EXPECT_THROW(parse_endpoint("tcp:host:"), SocketError);
  EXPECT_THROW(parse_endpoint("tcp:host:99999"), SocketError);
  EXPECT_THROW(parse_endpoint("tcp:host:12x"), SocketError);
}

// --- socket framing ---------------------------------------------------

struct SocketPair {
  Fd a, b;
  SocketPair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
      throw SocketError("socketpair failed");
    a = Fd(fds[0]);
    b = Fd(fds[1]);
  }
};

TEST(SocketFramingTest, FrameRoundTripsOverASocket) {
  SocketPair pair;
  const Frame sent{MsgType::ErrorResponse,
                   encode_error_response({ProtoStatus::Busy, "full"})};
  write_frame(pair.a.get(), sent);
  std::optional<Frame> got = read_frame(pair.b.get());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, sent.type);
  EXPECT_EQ(got->body, sent.body);
}

TEST(SocketFramingTest, BadMagicIsRejected) {
  SocketPair pair;
  const char garbage[16] = "GET / HTTP/1.1\r";
  write_all(pair.a.get(), garbage, sizeof(garbage));
  try {
    read_frame(pair.b.get());
    FAIL() << "garbage stream framed";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::BadMagic);
  }
}

TEST(SocketFramingTest, OversizedHeaderIsRejectedBeforeAllocation) {
  SocketPair pair;
  ByteWriter header;
  header.u32(kFrameMagic);
  header.u32(0xffffffffu);  // 4 GiB payload claim
  write_all(pair.a.get(), header.bytes().data(), header.bytes().size());
  try {
    read_frame(pair.b.get());
    FAIL() << "oversized header framed";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::Oversized);
  }
}

TEST(SocketFramingTest, CleanEofIsAValueNotAnError) {
  SocketPair pair;
  pair.a.close_now();
  EXPECT_FALSE(read_frame(pair.b.get()).has_value());
}

TEST(SocketFramingTest, MidFrameEofIsRejectedAsTruncated) {
  SocketPair pair;
  ByteWriter header;
  header.u32(kFrameMagic);
  header.u32(100);  // promises 100 payload bytes, delivers none
  write_all(pair.a.get(), header.bytes().data(), header.bytes().size());
  pair.a.close_now();
  try {
    read_frame(pair.b.get());
    FAIL() << "mid-frame EOF framed";
  } catch (...) {
    EXPECT_EQ(decode_status(std::current_exception()), ProtoStatus::Truncated);
  }
}

// --- job queue --------------------------------------------------------

std::shared_ptr<ServerJob> make_job(std::uint64_t id) {
  auto job = std::make_shared<ServerJob>();
  job->id = id;
  job->cancel = std::make_shared<CancelToken>();
  job->work = [] { return JobResult{}; };
  return job;
}

TEST(JobQueueTest, AdmissionControlRejectsBeyondMaxDepth) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_job(1)));
  EXPECT_TRUE(queue.try_push(make_job(2)));
  EXPECT_FALSE(queue.try_push(make_job(3)));  // full: reject, never block
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.peak_depth(), 2u);

  std::shared_ptr<ServerJob> first = queue.pop();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 1u);  // admission order
  EXPECT_TRUE(queue.try_push(make_job(4)));  // slot freed
}

TEST(JobQueueTest, CloseStopsAdmissionsButDrainsTheBacklog) {
  JobQueue queue(4);
  EXPECT_TRUE(queue.try_push(make_job(1)));
  EXPECT_TRUE(queue.try_push(make_job(2)));
  queue.close();
  EXPECT_FALSE(queue.try_push(make_job(3)));  // closed: no new admissions
  std::shared_ptr<ServerJob> a = queue.pop();
  std::shared_ptr<ServerJob> b = queue.pop();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->id, 1u);
  EXPECT_EQ(b->id, 2u);
  EXPECT_EQ(queue.pop(), nullptr);  // closed and drained
}

TEST(JobQueueTest, PopBlocksUntilAJobArrives) {
  JobQueue queue(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::shared_ptr<ServerJob> job = queue.pop();
    EXPECT_NE(job, nullptr);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  EXPECT_TRUE(queue.try_push(make_job(1)));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(JobQueueTest, CloseDrainRaceNeverDropsAnAdmittedJob) {
  // Pushers race a close(): every job is either refused at admission or
  // drained by the consumers -- admitted == popped, nothing vanishes.
  // Run under TSan via scripts/check.sh to validate the locking too.
  constexpr int kPushers = 4;
  constexpr int kJobsPerPusher = 200;
  JobQueue queue(kPushers * kJobsPerPusher);
  std::atomic<std::uint64_t> admitted{0}, refused{0}, popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (queue.pop() != nullptr) popped.fetch_add(1);
    });
  }
  std::vector<std::thread> pushers;
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&, p] {
      for (int j = 0; j < kJobsPerPusher; ++j) {
        if (queue.try_push(make_job(std::uint64_t(p) * kJobsPerPusher + j)))
          admitted.fetch_add(1);
        else
          refused.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.close();
  for (std::thread& t : pushers) t.join();
  for (std::thread& t : consumers) t.join();

  EXPECT_EQ(admitted.load() + refused.load(),
            std::uint64_t(kPushers) * kJobsPerPusher);
  EXPECT_EQ(popped.load(), admitted.load())
      << "admitted jobs must be drained, not dropped";
}

// --- live daemon ------------------------------------------------------

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/sva_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// One in-process daemon on a fresh socket.  The flow is the shared
/// static instance; serve() runs on a background thread until stop().
struct ServerHarness {
  std::string socket_path = unique_socket_path();
  // Declared before `server`: adopt_config() assigns it while the server
  // member is being initialized.
  bool want_tcp = false;
  ThreadPool pool{2};
  TimingServer server;
  std::thread thread;
  int exit_code = -1;

  static ServerConfig make_config(const std::string& path,
                                  std::size_t queue_depth, std::size_t lanes,
                                  std::size_t result_cache,
                                  std::uint64_t stall_ms,
                                  std::uint64_t grace_ms) {
    ServerConfig cfg;
    cfg.socket_path = path;
    cfg.queue_depth = queue_depth;
    cfg.lanes = lanes;
    cfg.result_cache_capacity = result_cache;
    cfg.watchdog_stall_ms = stall_ms;
    cfg.watchdog_grace_ms = grace_ms;
    return cfg;
  }

  explicit ServerHarness(std::size_t queue_depth = 8, std::size_t lanes = 0,
                         std::size_t result_cache = 0,
                         std::uint64_t stall_ms = 10'000,
                         std::uint64_t grace_ms = 2'000)
      : server(shared_flow(),
               make_config(socket_path, queue_depth, lanes, result_cache,
                           stall_ms, grace_ms)) {
    thread = std::thread([this] { exit_code = server.serve(pool); });
    wait_until_listening();
  }

  /// Full-config harness for the transport-hardening tests.  An empty
  /// socket_path with a listen_address runs TCP-only; otherwise the
  /// harness's fresh Unix path is filled in.
  explicit ServerHarness(ServerConfig cfg)
      : server(shared_flow(), adopt_config(cfg)) {
    thread = std::thread([this] { exit_code = server.serve(pool); });
    wait_until_listening();
  }

  ~ServerHarness() { stop(); }

  /// The tcp:HOST:PORT endpoint of the daemon's TCP listener.
  std::string tcp_endpoint() const {
    return "tcp:127.0.0.1:" + std::to_string(server.tcp_port());
  }

  void stop() {
    if (!thread.joinable()) return;
    server.request_stop();
    thread.join();
  }

  void wait_until_listening() {
    for (int i = 0; i < 500; ++i) {
      if (want_tcp && server.tcp_port() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (socket_path.empty()) return;  // TCP-only, and the port is bound
      try {
        Fd probe = unix_connect(socket_path);
        return;
      } catch (const SocketError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    FAIL() << "daemon never started listening";
  }

 private:
  ServerConfig adopt_config(ServerConfig cfg) {
    if (cfg.socket_path.empty() && cfg.listen_address.empty())
      cfg.socket_path = socket_path;
    socket_path = cfg.socket_path;  // may be empty for TCP-only daemons
    want_tcp = !cfg.listen_address.empty();
    return cfg;
  }
};

TEST(TimingServerTest, PingAndMetricsAnswerInline) {
  ServerHarness harness;
  ServerClient client(harness.socket_path);
  const Frame pong = client.call({MsgType::PingRequest, ""});
  EXPECT_EQ(pong.type, MsgType::PongResponse);

  const MetricsResponse metrics = fetch_remote_metrics(harness.socket_path);
  EXPECT_NE(metrics.json.find("server.connections"), std::string::npos);
  EXPECT_NE(metrics.json.find("\"counters\""), std::string::npos);
}

TEST(TimingServerTest, ThreeConcurrentClientsMatchTheDirectRunBitForBit) {
  const SvaFlow& flow = shared_flow();
  AnalyzeJobSpec spec;
  spec.circuits = {"C432"};
  ThreadPool direct_pool(2);
  const JobResult direct = run_analyze_job(flow, direct_pool, spec, nullptr);
  ASSERT_EQ(direct.exit_code, 0);
  ASSERT_TRUE(direct.error.empty());

  ServerHarness harness;
  constexpr int kClients = 3;
  std::vector<JobResult> remote(kClients);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        ServerClient client(harness.socket_path);
        AnalyzeRequest req;
        req.spec = spec;
        const Frame response = client.call(
            {MsgType::AnalyzeRequest, encode_analyze_request(req)});
        if (response.type != MsgType::ResultResponse) {
          failures[i] = std::string("unexpected response ") +
                        msg_type_name(response.type);
          return;
        }
        remote[i] = decode_result_response(response.body);
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(failures[i].empty()) << "client " << i << ": " << failures[i];
    EXPECT_EQ(remote[i].exit_code, 0) << "client " << i;
    // Bit-identical modulo the wall-time trailer, which varies between
    // *any* two runs (scripts/check.sh strips the same line).
    EXPECT_EQ(strip_variance(remote[i].output), strip_variance(direct.output))
        << "client " << i;
    EXPECT_TRUE(remote[i].artifacts.empty()) << "client " << i;
  }
}

TEST(TimingServerTest, SstaJobMatchesTheDirectRunBitForBit) {
  const SvaFlow& flow = shared_flow();
  SstaJobSpec spec;
  spec.circuit = "C432";
  spec.clock_period_ps = 2500.0;
  spec.mc_samples = 200;
  ThreadPool direct_pool(2);
  const JobResult direct = run_ssta_job(flow, direct_pool, spec, nullptr);
  ASSERT_EQ(direct.exit_code, 0);
  ASSERT_TRUE(direct.error.empty());

  ServerHarness harness;
  ServerClient client(harness.socket_path);
  SstaRequest req;
  req.spec = spec;
  const Frame response =
      client.call({MsgType::SstaRequest, encode_ssta_request(req)});
  ASSERT_EQ(response.type, MsgType::ResultResponse);
  const JobResult remote = decode_result_response(response.body);
  EXPECT_EQ(remote.exit_code, 0);
  // SSTA output carries no wall-time trailer: the remote bytes must be
  // identical, artifacts included (the criticality CSV).
  EXPECT_EQ(remote.output, direct.output);
  ASSERT_EQ(remote.artifacts.size(), direct.artifacts.size());
  ASSERT_EQ(remote.artifacts.size(), 1u);
  EXPECT_EQ(remote.artifacts[0].path, direct.artifacts[0].path);
  EXPECT_EQ(remote.artifacts[0].bytes, direct.artifacts[0].bytes);
}

TEST(TimingServerTest, PerJobDeadlineCancelsOnlyThatClient) {
  ServerHarness harness;

  std::string doomed_failure, healthy_failure;
  Frame doomed_response, healthy_response;
  std::thread doomed([&] {
    try {
      ServerClient client(harness.socket_path);
      AnalyzeRequest req;
      req.spec.circuits = {"C6288"};
      req.deadline_ms = 1;  // expires in the queue: cancelled at first poll
      doomed_response = client.call(
          {MsgType::AnalyzeRequest, encode_analyze_request(req)});
    } catch (const std::exception& e) {
      doomed_failure = e.what();
    }
  });
  std::thread healthy([&] {
    try {
      ServerClient client(harness.socket_path);
      AnalyzeRequest req;
      req.spec.circuits = {"C432"};
      healthy_response = client.call(
          {MsgType::AnalyzeRequest, encode_analyze_request(req)});
    } catch (const std::exception& e) {
      healthy_failure = e.what();
    }
  });
  doomed.join();
  healthy.join();

  ASSERT_TRUE(doomed_failure.empty()) << doomed_failure;
  ASSERT_EQ(doomed_response.type, MsgType::CancelledResponse);
  const CancelledResponse cancelled =
      decode_cancelled_response(doomed_response.body);
  EXPECT_EQ(cancelled.reason,
            static_cast<std::uint8_t>(CancelReason::Deadline));
  EXPECT_NE(cancelled.output.find("run cancelled (deadline)"),
            std::string::npos);

  ASSERT_TRUE(healthy_failure.empty()) << healthy_failure;
  ASSERT_EQ(healthy_response.type, MsgType::ResultResponse);
  EXPECT_EQ(decode_result_response(healthy_response.body).exit_code, 0);
}

TEST(TimingServerTest, MalformedFrameGetsAStructuredErrorAndTheDaemonLives) {
  ServerHarness harness;
  const std::uint64_t bad_before =
      MetricsRegistry::global().counter("server.bad_frames").value();

  // Exactly one header's worth of garbage: the server consumes all 8
  // bytes before rejecting, so its close is a clean FIN and the error
  // response is readable (trailing unread bytes would turn it into a
  // reset).
  Fd raw = unix_connect(harness.socket_path);
  const char garbage[8] = {'h', 'i', ' ', 't', 'h', 'e', 'r', 'e'};
  write_all(raw.get(), garbage, sizeof(garbage));
  std::optional<Frame> response = read_frame(raw.get());
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MsgType::ErrorResponse);
  EXPECT_EQ(decode_error_response(response->body).code,
            ProtoStatus::BadMagic);
  // The server drops the poisoned connection after answering.
  EXPECT_FALSE(read_frame(raw.get()).has_value());
  EXPECT_GT(MetricsRegistry::global().counter("server.bad_frames").value(),
            bad_before);

  // ...and the next client is served normally.
  ServerClient next(harness.socket_path);
  EXPECT_EQ(next.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);
}

TEST(TimingServerTest, OldProtocolVersionIsRefusedWithAClearError) {
  ServerHarness harness;
  ByteWriter payload;
  payload.u32(kProtocolVersion + 7);
  payload.u8(static_cast<std::uint8_t>(MsgType::PingRequest));
  payload.u64(fnv1a64_words("", 0));
  payload.str("");
  ByteWriter wire;
  wire.u32(kFrameMagic);
  wire.u32(static_cast<std::uint32_t>(payload.size()));
  const std::string bytes = wire.bytes() + payload.bytes();

  Fd raw = unix_connect(harness.socket_path);
  write_all(raw.get(), bytes.data(), bytes.size());
  std::optional<Frame> response = read_frame(raw.get());
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MsgType::ErrorResponse);
  const ErrorResponse err = decode_error_response(response->body);
  EXPECT_EQ(err.code, ProtoStatus::VersionMismatch);
  EXPECT_NE(err.message.find("version"), std::string::npos);
}

/// Disarm every failpoint on scope exit, pass or fail.
struct FailPointGuard {
  ~FailPointGuard() { FailPoints::clear_all(); }
};

TEST(TimingServerTest, ReadFaultDropsTheConnectionNotTheDaemon) {
  ServerHarness harness;
  FailPointGuard guard;
  const std::uint64_t faults_before =
      MetricsRegistry::global().counter("server.connection_faults").value();

  FailPoints::set("server.read", "throw");
  Fd raw = unix_connect(harness.socket_path);
  const std::string ping = encode_frame({MsgType::PingRequest, ""});
  write_all(raw.get(), ping.data(), ping.size());
  // The injected fault costs this connection: it is dropped without a
  // response -- as EOF or as a reset, depending on whether the kernel
  // still held our unread ping bytes at close time.
  try {
    EXPECT_FALSE(read_frame(raw.get()).has_value());
  } catch (const SocketError&) {
  }
  EXPECT_GT(FailPoints::fired_count("server.read"), 0u);
  EXPECT_GT(
      MetricsRegistry::global().counter("server.connection_faults").value(),
      faults_before);

  FailPoints::clear("server.read");
  ServerClient next(harness.socket_path);
  EXPECT_EQ(next.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);
}

TEST(TimingServerTest, AcceptFaultIsSurvivedAndThePendingClientIsServed) {
  ServerHarness harness;
  FailPointGuard guard;

  FailPoints::set("server.accept", "throw");
  // The connection parks in the listen backlog while accepts fault.
  Fd raw = unix_connect(harness.socket_path);
  const std::string ping = encode_frame({MsgType::PingRequest, ""});
  write_all(raw.get(), ping.data(), ping.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_GT(FailPoints::fired_count("server.accept"), 0u);

  // Once the fault clears the daemon accepts the parked connection and
  // answers the frame it already buffered.
  FailPoints::clear("server.accept");
  std::optional<Frame> response = read_frame(raw.get());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MsgType::PongResponse);
}

TEST(TimingServerTest, ClientDisconnectCancelsOnlyItsOwnJob) {
  ServerHarness harness;
  FailPointGuard guard;
  const std::uint64_t disconnects_before =
      MetricsRegistry::global().counter("server.client_disconnects").value();
  const std::uint64_t cancelled_before =
      MetricsRegistry::global().counter("server.jobs_cancelled").value();

  // Warm-cache analyzes finish inside the watcher's first 50 ms tick, so
  // hold the abandoned job open with an injected per-job delay -- long
  // enough that the disconnect must be noticed while it is in flight.
  FailPoints::set("batch.job", "delay(2000)");
  {
    // Submit a job and walk away: the watcher must notice the EOF and
    // trip that job's token (nobody is left to read the result).
    Fd deserter = unix_connect(harness.socket_path);
    AnalyzeRequest req;
    req.spec.circuits = {"C432"};
    const std::string wire =
        encode_frame({MsgType::AnalyzeRequest, encode_analyze_request(req)});
    write_all(deserter.get(), wire.data(), wire.size());
  }  // closes the socket with the job in flight

  // The watcher notices the EOF within a few poll ticks.
  for (int i = 0; i < 100; ++i) {
    if (MetricsRegistry::global()
            .counter("server.client_disconnects")
            .value() > disconnects_before)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_GT(
      MetricsRegistry::global().counter("server.client_disconnects").value(),
      disconnects_before);
  FailPoints::clear("batch.job");

  // A well-behaved client is untouched while the abandoned job winds
  // down (its job queues behind the doomed one and still succeeds).
  ServerClient client(harness.socket_path);
  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  const Frame response =
      client.call({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  ASSERT_EQ(response.type, MsgType::ResultResponse);
  EXPECT_EQ(decode_result_response(response.body).exit_code, 0);

  EXPECT_GT(MetricsRegistry::global().counter("server.jobs_cancelled").value(),
            cancelled_before);
}

TEST(TimingServerTest, FullQueueAnswersBusyInsteadOfBlocking) {
  // Depth 1: one job executing, one queued, the third must be rejected.
  // The injected per-job delay pins job A in the executor long enough
  // that B is still parked in the queue when C asks for admission.
  // Pinned to one lane: admission counts queued jobs only, so a second
  // lane would pop C499 instantly and free the slot.
  ServerHarness harness(1, /*lanes=*/1);
  FailPointGuard guard;
  FailPoints::set("batch.job", "delay(1500)");

  Fd slow_a = unix_connect(harness.socket_path);
  AnalyzeRequest slow_req;
  slow_req.spec.circuits = {"C432"};
  std::string wire =
      encode_frame({MsgType::AnalyzeRequest, encode_analyze_request(slow_req)});
  write_all(slow_a.get(), wire.data(), wire.size());
  // Give the executor time to pop A so the queue slot frees for B.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  Fd slow_b = unix_connect(harness.socket_path);
  slow_req.spec.circuits = {"C499"};
  wire =
      encode_frame({MsgType::AnalyzeRequest, encode_analyze_request(slow_req)});
  write_all(slow_b.get(), wire.data(), wire.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  ServerClient rejected(harness.socket_path);
  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  const Frame response =
      rejected.call({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  ASSERT_EQ(response.type, MsgType::BusyResponse);
  const BusyResponse busy = decode_busy_response(response.body);
  EXPECT_EQ(busy.max_depth, 1u);
  EXPECT_GT(busy.retry_after_ms, 0u);

  // Dropping the slow clients cancels their jobs so teardown is quick.
  slow_a.close_now();
  slow_b.close_now();
}

TEST(TimingServerTest, ShutdownRequestDrainsAndRemovesTheSocketFile) {
  ServerHarness harness;
  request_remote_shutdown(harness.socket_path);
  harness.thread.join();
  EXPECT_EQ(harness.exit_code, 0);
  struct stat st;
  EXPECT_NE(::stat(harness.socket_path.c_str(), &st), 0)
      << "socket file orphaned after a graceful drain";
}

// --- lane binding and result cache ------------------------------------

TEST(SpecHashTest, CanonicalBytesCoverTheResultShapingFieldsOnly) {
  AnalyzeJobSpec a;
  a.circuits = {"C432", "C880"};
  AnalyzeJobSpec b = a;
  EXPECT_EQ(job_spec_hash(a), job_spec_hash(b));

  // Checkpoint plumbing is local-only and never shapes the result: two
  // specs differing only there are the same job (and cache entry).
  b.resume_path = "foo.ckpt";
  b.checkpoint_path = "bar.ckpt";
  EXPECT_EQ(job_spec_hash(a), job_spec_hash(b));

  b = a;
  b.circuits = {"C880", "C432"};  // order shapes the output text
  EXPECT_NE(job_spec_hash(a), job_spec_hash(b));
  b = a;
  b.strict = true;
  EXPECT_NE(job_spec_hash(a), job_spec_hash(b));

  // The type tag keeps an analyze and an ssta of the "same" circuit from
  // colliding in the cache.
  SstaJobSpec s;
  s.circuit = "C432";
  AnalyzeJobSpec single;
  single.circuits = {"C432"};
  EXPECT_NE(job_spec_hash(single), job_spec_hash(s));

  OptimizeJobSpec o1, o2;
  o1.circuit = o2.circuit = "C17";
  o2.resume_path = "x.ckpt";  // local-only again
  EXPECT_EQ(job_spec_hash(o1), job_spec_hash(o2));
  o2.resume_path.clear();
  o2.max_moves = o1.max_moves + 1;
  EXPECT_NE(job_spec_hash(o1), job_spec_hash(o2));
}

TEST(RetryHintTest, BusyRetryHintIsMonotoneInQueueDepth) {
  std::uint64_t prev = 0;
  for (std::size_t depth = 0; depth < 64; ++depth) {
    const std::uint64_t hint = estimate_retry_after_ms(depth, 40.0);
    EXPECT_GE(hint, prev) << "depth " << depth;
    EXPECT_GT(hint, 0u);
    prev = hint;
  }
  // A mean below the floor still yields a usable hint, and the hint is
  // capped so a pathological mean cannot park clients for hours.
  EXPECT_GT(estimate_retry_after_ms(0, 0.0), 0u);
  EXPECT_LE(estimate_retry_after_ms(1u << 20, 1e9), 60'000u);
}

TEST(ResultCacheTest, BoundedLruEvictsTheLeastRecentlyUsed) {
  ResultCache cache(2);
  JobResult r1, r2, r3;
  r1.output = "one";
  r2.output = "two";
  r3.output = "three";
  cache.insert(1, r1);
  cache.insert(2, r2);
  ASSERT_TRUE(cache.lookup(1).has_value());  // refresh: 1 is now MRU
  cache.insert(3, r3);                       // evicts 2, the LRU
  EXPECT_FALSE(cache.lookup(2).has_value());
  std::optional<JobResult> hit1 = cache.lookup(1);
  std::optional<JobResult> hit3 = cache.lookup(3);
  ASSERT_TRUE(hit1.has_value());
  ASSERT_TRUE(hit3.has_value());
  EXPECT_EQ(hit1->output, "one");
  EXPECT_EQ(hit3->output, "three");
  EXPECT_EQ(cache.size(), 2u);

  ResultCache disabled(0);
  disabled.insert(7, r1);
  EXPECT_FALSE(disabled.lookup(7).has_value());
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(TimingServerTest, HealthProbeReportsLaneAndQueueState) {
  ServerHarness harness(8, /*lanes=*/3);
  const HealthResponse health = fetch_remote_health(harness.socket_path);
  EXPECT_EQ(health.queue_capacity, 8u);
  EXPECT_EQ(health.queue_depth, 0u);
  ASSERT_EQ(health.lane_states.size(), 3u);
  for (char state : health.lane_states)
    EXPECT_NE(static_cast<LaneState>(state), LaneState::Wedged);

  ServerClient client(harness.socket_path);
  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  ASSERT_EQ(client
                .call({MsgType::AnalyzeRequest, encode_analyze_request(req)})
                .type,
            MsgType::ResultResponse);
  const HealthResponse after = fetch_remote_health(harness.socket_path);
  EXPECT_GT(after.jobs_served, health.jobs_served);
}

TEST(TimingServerTest, MultiLaneOutputIsBitIdenticalToSingleLane) {
  const SvaFlow& flow = shared_flow();
  AnalyzeJobSpec analyze_spec;
  analyze_spec.circuits = {"C432", "C880"};
  SstaJobSpec ssta_spec;
  ssta_spec.circuit = "C432";
  ssta_spec.clock_period_ps = 2500.0;
  ssta_spec.mc_samples = 100;
  OptimizeRequest opt_req;
  opt_req.spec.circuit = "C432";
  opt_req.spec.max_moves = 4;

  ThreadPool direct_pool(2);
  const JobResult direct_analyze =
      run_analyze_job(flow, direct_pool, analyze_spec, nullptr);
  const JobResult direct_ssta =
      run_ssta_job(flow, direct_pool, ssta_spec, nullptr);
  ASSERT_EQ(direct_analyze.exit_code, 0);
  ASSERT_EQ(direct_ssta.exit_code, 0);

  // The same three jobs through a one-lane daemon (the old executor
  // semantics) and a four-lane daemon must produce the same bytes --
  // the deterministic lane binding argument, asserted.
  JobResult analyze_by_lanes[2], ssta_by_lanes[2], opt_by_lanes[2];
  const std::size_t lane_counts[2] = {1, 4};
  for (int v = 0; v < 2; ++v) {
    ServerHarness harness(8, lane_counts[v]);
    ServerClient client(harness.socket_path);
    AnalyzeRequest areq;
    areq.spec = analyze_spec;
    Frame resp =
        client.call({MsgType::AnalyzeRequest, encode_analyze_request(areq)});
    ASSERT_EQ(resp.type, MsgType::ResultResponse);
    analyze_by_lanes[v] = decode_result_response(resp.body);

    SstaRequest sreq;
    sreq.spec = ssta_spec;
    resp = client.call({MsgType::SstaRequest, encode_ssta_request(sreq)});
    ASSERT_EQ(resp.type, MsgType::ResultResponse);
    ssta_by_lanes[v] = decode_result_response(resp.body);

    resp = client.call(
        {MsgType::OptimizeRequest, encode_optimize_request(opt_req)});
    ASSERT_EQ(resp.type, MsgType::ResultResponse);
    opt_by_lanes[v] = decode_result_response(resp.body);
  }

  EXPECT_EQ(strip_variance(analyze_by_lanes[0].output),
            strip_variance(direct_analyze.output));
  EXPECT_EQ(strip_variance(analyze_by_lanes[1].output),
            strip_variance(analyze_by_lanes[0].output));

  for (int v = 0; v < 2; ++v) {
    EXPECT_EQ(ssta_by_lanes[v].output, direct_ssta.output) << "lanes config "
                                                           << v;
    ASSERT_EQ(ssta_by_lanes[v].artifacts.size(),
              direct_ssta.artifacts.size());
    for (std::size_t i = 0; i < direct_ssta.artifacts.size(); ++i)
      EXPECT_EQ(ssta_by_lanes[v].artifacts[i].bytes,
                direct_ssta.artifacts[i].bytes);
  }

  EXPECT_EQ(opt_by_lanes[1].exit_code, opt_by_lanes[0].exit_code);
  EXPECT_EQ(opt_by_lanes[1].output, opt_by_lanes[0].output);
  ASSERT_EQ(opt_by_lanes[1].artifacts.size(), opt_by_lanes[0].artifacts.size());
  for (std::size_t i = 0; i < opt_by_lanes[0].artifacts.size(); ++i)
    EXPECT_EQ(opt_by_lanes[1].artifacts[i].bytes,
              opt_by_lanes[0].artifacts[i].bytes);
}

TEST(TimingServerTest, CachedReplayIsByteIdenticalAndSkipsReExecution) {
  ServerHarness harness(8, /*lanes=*/2, /*result_cache=*/16);
  const std::uint64_t hits_before =
      MetricsRegistry::global().counter("server.result_cache.hits").value();

  AnalyzeRequest req;
  req.spec.circuits = {"C432"};

  ServerClient first(harness.socket_path);
  const Frame r1 = first.call({MsgType::AnalyzeRequest,
                               encode_analyze_request(req)});
  ASSERT_EQ(r1.type, MsgType::ResultResponse);
  ServerClient second(harness.socket_path);
  const Frame r2 = second.call({MsgType::AnalyzeRequest,
                                encode_analyze_request(req)});
  ASSERT_EQ(r2.type, MsgType::ResultResponse);

  // A cache hit replays the stored result verbatim: byte-identical
  // INCLUDING the wall-time trailer no two fresh runs ever agree on.
  EXPECT_EQ(r2.body, r1.body);
  EXPECT_GT(
      MetricsRegistry::global().counter("server.result_cache.hits").value(),
      hits_before);
}

// --- fault isolation ---------------------------------------------------

TEST(TimingServerTest, LaneCrashIsIsolatedAndTransparentlyRetried) {
  ServerHarness harness(8, /*lanes=*/2);
  FailPointGuard guard;
  const std::uint64_t poisoned_before =
      MetricsRegistry::global().counter("server.lane.poisoned").value();

  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  const Frame request{MsgType::AnalyzeRequest, encode_analyze_request(req)};

  // Phase 1, deterministic: every lane run crashes.  A retry-less client
  // sees the dropped connection as the transient failure it is.
  FailPoints::set("server.lane.run", "throw");
  EXPECT_THROW(call_server_with_retry(harness.socket_path, request, {}),
               TransientError);
  // The lane bumps the poison counter just after delivering the crash
  // result, so give it a few ticks to land.
  for (int i = 0; i < 100; ++i) {
    if (MetricsRegistry::global().counter("server.lane.poisoned").value() >
        poisoned_before)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(MetricsRegistry::global().counter("server.lane.poisoned").value(),
            poisoned_before);

  // The daemon survived the crash: the next request (faults cleared)
  // runs on a recycled lane and succeeds.
  FailPoints::clear("server.lane.run");
  ServerClient probe(harness.socket_path);
  ASSERT_EQ(probe.call(request).type, MsgType::ResultResponse);
  const JobResult clean = decode_result_response(probe.call(request).body);
  EXPECT_EQ(clean.exit_code, 0);

  // Phase 2, probabilistic chaos: lanes crash 30% of the time while
  // three clients hammer the daemon with retries.  Every client must
  // land the correct bytes.
  FailPoints::set("server.lane.run", "prob(0.3)");
  ClientRetryConfig retry;
  retry.retries = 25;
  retry.initial_backoff = std::chrono::milliseconds(5);
  retry.max_jitter = std::chrono::milliseconds(5);
  constexpr int kClients = 3;
  std::vector<std::string> failures(kClients);
  std::vector<JobResult> results(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        const Frame resp =
            call_server_with_retry(harness.socket_path, request, retry);
        if (resp.type != MsgType::ResultResponse) {
          failures[i] = std::string("unexpected response ") +
                        msg_type_name(resp.type);
          return;
        }
        results[i] = decode_result_response(resp.body);
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  FailPoints::clear("server.lane.run");

  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(failures[i].empty()) << "client " << i << ": " << failures[i];
    EXPECT_EQ(results[i].exit_code, 0) << "client " << i;
    EXPECT_EQ(strip_variance(results[i].output), strip_variance(clean.output))
        << "client " << i;
  }

  // ...and after all that abuse the daemon still drains cleanly.
  harness.stop();
  EXPECT_EQ(harness.exit_code, 0);
}

TEST(TimingServerTest, WatchdogWedgesAStuckLaneAndRecyclesIt) {
  // One lane, aggressive watchdog: a job that stops heartbeating for
  // 200 ms gets its token fired; 300 ms later the lane is declared
  // wedged, the client is answered, and a replacement thread takes over.
  ServerHarness harness(8, /*lanes=*/1, /*result_cache=*/0,
                        /*stall_ms=*/200, /*grace_ms=*/300);
  FailPointGuard guard;
  const std::uint64_t wedged_before =
      MetricsRegistry::global().counter("server.lane.wedged").value();

  // The injected delay sleeps inside the job body, far from any poll
  // point -- exactly the "stuck, not cancellable" shape the watchdog
  // exists for.
  FailPoints::set("batch.job", "delay(3000)");
  ServerClient stuck(harness.socket_path);
  AnalyzeRequest req;
  req.spec.circuits = {"C432"};
  const Frame request{MsgType::AnalyzeRequest, encode_analyze_request(req)};
  const Frame response = stuck.call(request);
  ASSERT_EQ(response.type, MsgType::CancelledResponse);
  const CancelledResponse cancelled =
      decode_cancelled_response(response.body);
  EXPECT_EQ(cancelled.reason,
            static_cast<std::uint8_t>(CancelReason::Watchdog));
  EXPECT_NE(cancelled.output.find("lane wedged"), std::string::npos);
  EXPECT_GT(MetricsRegistry::global().counter("server.lane.wedged").value(),
            wedged_before);

  // The same spec -- bound to the same (now recycled) lane -- succeeds
  // once the fault is gone, and other clients were never at risk.
  FailPoints::clear("batch.job");
  ServerClient next(harness.socket_path);
  const Frame ok = next.call(request);
  ASSERT_EQ(ok.type, MsgType::ResultResponse);
  EXPECT_EQ(decode_result_response(ok.body).exit_code, 0);
}

// --- TCP transport ----------------------------------------------------

TEST(TimingServerTest, TcpTransportIsByteIdenticalToUnixAndDirect) {
  const SvaFlow& flow = shared_flow();
  AnalyzeJobSpec spec;
  spec.circuits = {"C432"};
  ThreadPool direct_pool(2);
  const JobResult direct = run_analyze_job(flow, direct_pool, spec, nullptr);
  ASSERT_EQ(direct.exit_code, 0);

  ServerConfig cfg;
  cfg.socket_path = unique_socket_path();
  cfg.listen_address = "127.0.0.1:0";  // ephemeral port, discovered below
  ServerHarness harness(cfg);  // dual-listener: Unix socket + TCP
  ASSERT_NE(harness.server.tcp_port(), 0);

  const std::uint64_t accepted_before =
      MetricsRegistry::global().counter("server.conn.accepted").value();

  AnalyzeRequest req;
  req.spec = spec;
  const Frame request{MsgType::AnalyzeRequest, encode_analyze_request(req)};

  ServerClient over_tcp(harness.tcp_endpoint());
  const Frame tcp_resp = over_tcp.call(request);
  ASSERT_EQ(tcp_resp.type, MsgType::ResultResponse);
  const JobResult tcp_result = decode_result_response(tcp_resp.body);

  ServerClient over_unix("unix:" + harness.socket_path);
  const Frame unix_resp = over_unix.call(request);
  ASSERT_EQ(unix_resp.type, MsgType::ResultResponse);
  const JobResult unix_result = decode_result_response(unix_resp.body);

  EXPECT_EQ(tcp_result.exit_code, 0);
  EXPECT_EQ(strip_variance(tcp_result.output), strip_variance(direct.output));
  EXPECT_EQ(strip_variance(unix_result.output),
            strip_variance(tcp_result.output));

  // Both transports run through the same connection supervisor.
  EXPECT_GE(MetricsRegistry::global().counter("server.conn.accepted").value(),
            accepted_before + 2);

  // Inline requests answer over TCP too.
  ServerClient ping(harness.tcp_endpoint());
  EXPECT_EQ(ping.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);
}

TEST(TimingServerTest, ConnMetricsAppearInTheJsonSnapshot) {
  ServerConfig cfg;
  cfg.listen_address = "127.0.0.1:0";
  ServerHarness harness(cfg);
  ServerClient ping(harness.tcp_endpoint());
  ASSERT_EQ(ping.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);

  const MetricsResponse m = fetch_remote_metrics(harness.tcp_endpoint());
  for (const char* key :
       {"server.conn.accepted", "server.conn.active", "server.conn.bytes_in",
        "server.conn.bytes_out"}) {
    EXPECT_NE(m.json.find(key), std::string::npos) << key;
  }
}

// --- batched frames ---------------------------------------------------

TEST(TimingServerTest, BatchIsByteIdenticalToSingleSpecConnections) {
  // Result cache ON: the singles run first and populate it, so the batch
  // slots for the cacheable kinds replay the *exact* stored bytes --
  // wall-time trailer included -- and optimize is deterministic anyway.
  ServerHarness harness(8, /*lanes=*/2, /*result_cache=*/16);

  AnalyzeRequest a;
  a.spec.circuits = {"C432"};
  SstaRequest s;
  s.spec.circuit = "C432";
  s.spec.clock_period_ps = 2500.0;
  s.spec.mc_samples = 100;
  OptimizeRequest o;
  o.spec.circuit = "C432";
  o.spec.max_moves = 4;

  const Frame singles_req[3] = {
      {MsgType::AnalyzeRequest, encode_analyze_request(a)},
      {MsgType::SstaRequest, encode_ssta_request(s)},
      {MsgType::OptimizeRequest, encode_optimize_request(o)},
  };
  Frame singles[3];
  for (int i = 0; i < 3; ++i) {
    ServerClient client(harness.socket_path);
    singles[i] = client.call(singles_req[i]);
    ASSERT_EQ(singles[i].type, MsgType::ResultResponse) << "single " << i;
  }

  BatchRequest batch;
  for (int i = 0; i < 3; ++i)
    batch.items.push_back(
        {static_cast<std::uint8_t>(singles_req[i].type),
         singles_req[i].body});
  ServerClient client(harness.socket_path);
  const Frame response =
      client.call({MsgType::BatchRequest, encode_batch_request(batch)});
  ASSERT_EQ(response.type, MsgType::BatchResponse);
  const BatchResponse decoded = decode_batch_response(response.body);
  ASSERT_EQ(decoded.slots.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.slots[i].type, singles[i].type) << "slot " << i;
    EXPECT_EQ(decoded.slots[i].body, singles[i].body) << "slot " << i;
  }
}

TEST(TimingServerTest, BatchMalformedSlotPoisonsOnlyItsOwnSlot) {
  ServerHarness harness(8, /*lanes=*/2);

  AnalyzeRequest a;
  a.spec.circuits = {"C432"};
  SstaRequest s;
  s.spec.circuit = "C432";
  s.spec.clock_period_ps = 2500.0;
  s.spec.mc_samples = 100;

  BatchRequest batch;
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::AnalyzeRequest),
       encode_analyze_request(a)});
  // Slot 1: a known type that is not a job request.
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::PingRequest), ""});
  // Slot 2: a job kind whose body is garbage.
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::AnalyzeRequest), "garbage"});
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::SstaRequest),
       encode_ssta_request(s)});

  ServerClient client(harness.socket_path);
  const Frame response =
      client.call({MsgType::BatchRequest, encode_batch_request(batch)});
  ASSERT_EQ(response.type, MsgType::BatchResponse);
  const BatchResponse decoded = decode_batch_response(response.body);
  ASSERT_EQ(decoded.slots.size(), 4u);

  EXPECT_EQ(decoded.slots[0].type, MsgType::ResultResponse);
  EXPECT_EQ(decode_result_response(decoded.slots[0].body).exit_code, 0);

  ASSERT_EQ(decoded.slots[1].type, MsgType::ErrorResponse);
  EXPECT_EQ(decode_error_response(decoded.slots[1].body).code,
            ProtoStatus::BadType);

  ASSERT_EQ(decoded.slots[2].type, MsgType::ErrorResponse);
  EXPECT_EQ(decode_error_response(decoded.slots[2].body).code,
            ProtoStatus::BadBody);

  EXPECT_EQ(decoded.slots[3].type, MsgType::ResultResponse);
  EXPECT_EQ(decode_result_response(decoded.slots[3].body).exit_code, 0);

  // The poisoned slots did not kill the connection or the daemon.
  EXPECT_EQ(client.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);
}

TEST(TimingServerTest, BatchOutputIsBitIdenticalAcrossLaneCounts) {
  AnalyzeRequest a1, a2;
  a1.spec.circuits = {"C432"};
  a2.spec.circuits = {"C880"};
  SstaRequest s;
  s.spec.circuit = "C432";
  s.spec.clock_period_ps = 2500.0;
  s.spec.mc_samples = 100;

  BatchRequest batch;
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::AnalyzeRequest),
       encode_analyze_request(a1)});
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::AnalyzeRequest),
       encode_analyze_request(a2)});
  batch.items.push_back(
      {static_cast<std::uint8_t>(MsgType::SstaRequest),
       encode_ssta_request(s)});

  const std::size_t lane_counts[2] = {1, 4};
  BatchResponse by_lanes[2];
  for (int v = 0; v < 2; ++v) {
    ServerHarness harness(8, lane_counts[v]);
    ServerClient client(harness.socket_path);
    const Frame response =
        client.call({MsgType::BatchRequest, encode_batch_request(batch)});
    ASSERT_EQ(response.type, MsgType::BatchResponse) << "lanes config " << v;
    by_lanes[v] = decode_batch_response(response.body);
    ASSERT_EQ(by_lanes[v].slots.size(), 3u);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(by_lanes[0].slots[i].type, MsgType::ResultResponse);
    ASSERT_EQ(by_lanes[1].slots[i].type, MsgType::ResultResponse);
    const JobResult one = decode_result_response(by_lanes[0].slots[i].body);
    const JobResult four = decode_result_response(by_lanes[1].slots[i].body);
    EXPECT_EQ(strip_variance(four.output), strip_variance(one.output))
        << "slot " << i;
    ASSERT_EQ(four.artifacts.size(), one.artifacts.size()) << "slot " << i;
    for (std::size_t k = 0; k < one.artifacts.size(); ++k)
      EXPECT_EQ(four.artifacts[k].bytes, one.artifacts[k].bytes)
          << "slot " << i << " artifact " << k;
  }
}

// --- slow-client defense ----------------------------------------------

TEST(TimingServerTest, SlowLorisPeerIsEvictedWithoutPerturbingAFastClient) {
  ServerConfig cfg;
  cfg.conn_limits.read_timeout_ms = 200;  // evict mid-frame stalls fast
  ServerHarness harness(cfg);
  const std::uint64_t evicted_before =
      MetricsRegistry::global().counter("server.conn.evicted_slow").value();

  const SvaFlow& flow = shared_flow();
  AnalyzeJobSpec spec;
  spec.circuits = {"C432"};
  ThreadPool direct_pool(2);
  const JobResult direct = run_analyze_job(flow, direct_pool, spec, nullptr);

  // The slow loris: open a frame with 4 of its 8 header bytes, then
  // drip nothing.  Progress never extends the budget, so the read
  // deadline expires whatever the peer promises.
  Fd loris = unix_connect(harness.socket_path);
  const std::string ping = encode_frame({MsgType::PingRequest, ""});
  write_all(loris.get(), ping.data(), 4);

  // A fast client served concurrently with the stalled peer must get
  // bytes identical to a direct run.
  ServerClient fast(harness.socket_path);
  AnalyzeRequest req;
  req.spec = spec;
  const Frame response =
      fast.call({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  ASSERT_EQ(response.type, MsgType::ResultResponse);
  const JobResult remote = decode_result_response(response.body);
  EXPECT_EQ(remote.exit_code, 0);
  EXPECT_EQ(strip_variance(remote.output), strip_variance(direct.output));

  // The loris is evicted: its connection reaches EOF (or a reset, when
  // the kernel still held unread bytes) and the counter records why.
  bool dropped = false;
  try {
    dropped = !read_frame(loris.get()).has_value();
  } catch (const SocketError&) {
    dropped = true;
  }
  EXPECT_TRUE(dropped);
  for (int i = 0; i < 100 && MetricsRegistry::global()
                                     .counter("server.conn.evicted_slow")
                                     .value() == evicted_before;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(
      MetricsRegistry::global().counter("server.conn.evicted_slow").value(),
      evicted_before);

  // The daemon still serves.
  ServerClient next(harness.socket_path);
  EXPECT_EQ(next.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);
}

TEST(TimingServerTest, IdleConnectionIsEvictedAfterItsBudget) {
  ServerConfig cfg;
  cfg.conn_limits.idle_timeout_ms = 150;
  ServerHarness harness(cfg);
  const std::uint64_t evicted_before =
      MetricsRegistry::global().counter("server.conn.evicted_slow").value();

  // A well-formed exchange, then silence: the idle budget reclaims the
  // parked connection.
  Fd idle = unix_connect(harness.socket_path);
  const std::string ping = encode_frame({MsgType::PingRequest, ""});
  write_all(idle.get(), ping.data(), ping.size());
  std::optional<Frame> pong = read_frame(idle.get());
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, MsgType::PongResponse);

  EXPECT_FALSE(read_frame(idle.get()).has_value())
      << "parked connection was not closed";
  EXPECT_GT(
      MetricsRegistry::global().counter("server.conn.evicted_slow").value(),
      evicted_before);
}

// --- overload shedding ------------------------------------------------

TEST(TimingServerTest, OverMaxConnsIsShedWithBusyAndRetryHint) {
  ServerConfig cfg;
  cfg.max_conns = 1;
  cfg.conn_limits.idle_timeout_ms = 0;  // let the holder park indefinitely
  ServerHarness harness(cfg);
  const std::uint64_t shed_before =
      MetricsRegistry::global().counter("server.conn.shed_busy").value();

  // Acquire the one supervised slot.  The harness's listen probe may
  // still hold it for a poll tick, so retry until a full ping round-trip
  // proves this connection is the supervised one (a shed connection
  // answers Busy instead).
  Fd holder;
  bool held = false;
  const std::string hold_ping = encode_frame({MsgType::PingRequest, ""});
  for (int i = 0; i < 200 && !held; ++i) {
    holder = unix_connect(harness.socket_path);
    write_all(holder.get(), hold_ping.data(), hold_ping.size());
    std::optional<Frame> hold_pong = read_frame(holder.get());
    ASSERT_TRUE(hold_pong.has_value());
    if (hold_pong->type == MsgType::PongResponse) {
      held = true;
    } else {
      holder.close_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(held) << "never acquired the supervised connection slot";

  Fd rejected = unix_connect(harness.socket_path);
  std::optional<Frame> response = read_frame(rejected.get());
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MsgType::BusyResponse);
  const BusyResponse busy = decode_busy_response(response->body);
  EXPECT_GT(busy.retry_after_ms, 0u);
  EXPECT_FALSE(read_frame(rejected.get()).has_value())
      << "shed connection left open";
  EXPECT_GT(MetricsRegistry::global().counter("server.conn.shed_busy").value(),
            shed_before);

  // Freeing the held slot restores service (Busy answers continue until
  // the holder's handler notices the close and releases the slot).
  holder.close_now();
  for (int i = 0; i < 200; ++i) {
    try {
      ServerClient next(harness.socket_path);
      if (next.call({MsgType::PingRequest, ""}).type ==
          MsgType::PongResponse)
        return;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "slot never freed after the holder disconnected";
}

// --- connection failpoints --------------------------------------------

TEST(TimingServerTest, ConnReadFaultIsACleanDropTheRetryPathAbsorbs) {
  ServerHarness harness;
  FailPointGuard guard;

  // Deterministic: the supervised read faults before any byte moves, so
  // the client sees a pre-response EOF -- the transient class.
  FailPoints::set("server.conn.read", "throw");
  EXPECT_THROW(
      call_server_with_retry(harness.socket_path,
                             {MsgType::PingRequest, ""}, {}),
      TransientError);
  EXPECT_GT(FailPoints::fired_count("server.conn.read"), 0u);
  FailPoints::clear("server.conn.read");

  // Probabilistic: a retried client always lands the answer.
  FailPoints::set("server.conn.read", "prob(0.5)");
  ClientRetryConfig retry;
  retry.retries = 25;
  retry.initial_backoff = std::chrono::milliseconds(2);
  const Frame pong = call_server_with_retry(
      harness.socket_path, {MsgType::PingRequest, ""}, retry);
  EXPECT_EQ(pong.type, MsgType::PongResponse);
}

TEST(TimingServerTest, ConnWriteFaultDropsTheResponseNotTheDaemon) {
  ServerHarness harness;
  FailPointGuard guard;

  FailPoints::set("server.conn.write", "throw");
  EXPECT_THROW(
      call_server_with_retry(harness.socket_path,
                             {MsgType::PingRequest, ""}, {}),
      TransientError);
  EXPECT_GT(FailPoints::fired_count("server.conn.write"), 0u);
  FailPoints::clear("server.conn.write");

  ServerClient next(harness.socket_path);
  EXPECT_EQ(next.call({MsgType::PingRequest, ""}).type,
            MsgType::PongResponse);
}

}  // namespace
}  // namespace sva
