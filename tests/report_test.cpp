// Tests for the report module: tables, CSV, ASCII plots and histograms.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Testcase", "Gates", "Delay"});
  t.add_row({"C432", "160", "1.974"});
  t.add_row({"C880", "383", "2.918"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Testcase"), std::string::npos);
  EXPECT_NE(out.find("C432"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("--------"), std::string::npos);
  // Numeric cells right-aligned: "160" appears padded to width of "Gates".
  EXPECT_NE(out.find("  160"), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
  EXPECT_NO_THROW(t.add_row({"x", "y"}));
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvEscapes) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PercentCellsAreNumeric) {
  Table t({"x", "pct"});
  t.add_row({"r", "28.3%"});
  const std::string out = t.render();
  // Right-aligned under the 3-wide header "pct" -> padded.
  EXPECT_NE(out.find("28.3%"), std::string::npos);
}

TEST(Plot, RendersSeriesAndLegend) {
  Series s;
  s.name = "dense";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  PlotOptions opt;
  opt.title = "test plot";
  opt.x_label = "pitch";
  opt.y_label = "cd";
  const std::string out = render_plot({s}, opt);
  EXPECT_NE(out.find("test plot"), std::string::npos);
  EXPECT_NE(out.find("* = dense"), std::string::npos);
  EXPECT_NE(out.find("x: pitch"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Plot, MultipleSeriesUseDistinctGlyphs) {
  Series a{"a", {0, 1}, {0, 1}};
  Series b{"b", {0, 1}, {1, 0}};
  const std::string out = render_plot({a, b}, PlotOptions{});
  EXPECT_NE(out.find("* = a"), std::string::npos);
  EXPECT_NE(out.find("o = b"), std::string::npos);
}

TEST(Plot, RejectsDegenerateOptions) {
  Series s{"s", {0.0}, {0.0}};
  PlotOptions tiny;
  tiny.width = 4;
  EXPECT_THROW(render_plot({s}, tiny), PreconditionError);
  EXPECT_THROW(render_plot({}, PlotOptions{}), PreconditionError);
}

TEST(Plot, HistogramBars) {
  const Histogram h = make_histogram({1.0, 1.1, 1.2, 5.0}, 0.0, 10.0, 5);
  const std::string out = render_histogram(h, "hist");
  EXPECT_NE(out.find("hist"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Plot, HistogramShowsOverflow) {
  const Histogram h = make_histogram({-5.0, 20.0, 1.0}, 0.0, 10.0, 2);
  const std::string out = render_histogram(h, "");
  EXPECT_NE(out.find("underflow: 1"), std::string::npos);
  EXPECT_NE(out.find("overflow: 1"), std::string::npos);
}

TEST(Csv, LongFormSeries) {
  Series a{"a", {1.0, 2.0}, {3.0, 4.0}};
  const std::string csv = series_to_csv({a});
  EXPECT_NE(csv.find("series,x,y"), std::string::npos);
  EXPECT_NE(csv.find("a,1.000000,3.000000"), std::string::npos);
}

TEST(Csv, WriteTextFileRoundTrip) {
  const std::string path = "/tmp/sva_report_test.csv";
  write_text_file(path, "hello\n");
  std::ifstream is(path);
  std::string content;
  std::getline(is, content);
  EXPECT_EQ(content, "hello");
  std::remove(path.c_str());
}

TEST(Csv, WriteTextFileFailsOnBadPath) {
  EXPECT_THROW(write_text_file("/nonexistent_dir_xyz/file.txt", "x"),
               Error);
}

}  // namespace
}  // namespace sva
