// Tests for the opt module: the drive-strength ladder (SizedLibrary), the
// what-if hooks it leans on (set_gate_cell / update_gate_master /
// run_what_if, nps_after_shift), and the ECO loop itself -- convergence,
// exactness of the committed state, schedule independence, and the
// headline SVA-vs-traditional comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/flow.hpp"
#include "core/scales.hpp"
#include "engine/thread_pool.hpp"
#include "netlist/iscas85.hpp"
#include "opt/eco.hpp"
#include "opt/sizing.hpp"
#include "opt/trajectory.hpp"
#include "place/context.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

/// One flow (library OPC etc.) and one sized library shared by every test.
const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

const SizedLibrary& sized() {
  static const SizedLibrary s(flow().library(), flow().config().electrical,
                              flow().library_opc_results(),
                              flow().boundary_model(), flow().config().bins);
  return s;
}

EcoConfig eco_config() {
  EcoConfig cfg;
  cfg.budget = flow().config().budget;
  cfg.arc_policy = flow().config().arc_policy;
  cfg.sta = flow().config().sta;
  return cfg;
}

TEST(SizedLibrary, BaseMastersKeepTheirIndices) {
  const CellLibrary& base = flow().library();
  ASSERT_EQ(sized().base_count(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(sized().library().master(i).name(), base.master(i).name());
    EXPECT_EQ(sized().base_of(i), i);
    EXPECT_DOUBLE_EQ(sized().multiplier_of(i), 1.0);
  }
  const std::size_t rungs = sized().multipliers().size();
  EXPECT_EQ(sized().library().size(), base.size() * rungs);
}

TEST(SizedLibrary, LadderNavigationRoundTrips) {
  for (std::size_t b = 0; b < sized().base_count(); ++b) {
    std::size_t cell = b;
    while (sized().can_downsize(cell)) cell = sized().downsized(cell);
    EXPECT_EQ(sized().rung_of(cell), 0u);
    std::size_t steps = 0;
    while (sized().can_upsize(cell)) {
      const std::size_t up = sized().upsized(cell);
      EXPECT_EQ(sized().base_of(up), b);
      EXPECT_EQ(sized().rung_of(up), sized().rung_of(cell) + 1);
      EXPECT_GT(sized().multiplier_of(up), sized().multiplier_of(cell));
      EXPECT_EQ(sized().downsized(up), cell);
      cell = up;
      ++steps;
    }
    EXPECT_EQ(steps + 1, sized().multipliers().size());
  }
}

TEST(SizedLibrary, VariantsShareGeometryAndScaleWidths) {
  const CellLibrary& lib = sized().library();
  for (std::size_t b = 0; b < sized().base_count(); ++b) {
    const CellMaster& base = lib.master(b);
    for (std::size_t r = 0; r < sized().multipliers().size(); ++r) {
      const CellMaster& variant = lib.master(sized().at_rung(b, r));
      const double m = sized().multipliers()[r];
      ASSERT_EQ(variant.gates().size(), base.gates().size());
      ASSERT_EQ(variant.devices().size(), base.devices().size());
      ASSERT_EQ(variant.arcs().size(), base.arcs().size());
      EXPECT_DOUBLE_EQ(variant.width(), base.width());
      for (std::size_t gi = 0; gi < base.gates().size(); ++gi) {
        EXPECT_DOUBLE_EQ(variant.gates()[gi].x_center,
                         base.gates()[gi].x_center);
        EXPECT_DOUBLE_EQ(variant.gates()[gi].length, base.gates()[gi].length);
      }
      for (std::size_t di = 0; di < base.devices().size(); ++di)
        EXPECT_NEAR(variant.devices()[di].width,
                    base.devices()[di].width * m, 1e-9);
    }
  }
}

TEST(SizedLibrary, NetlistGenerationIsInvariantUnderExpansion) {
  const Netlist a = generate_iscas85_like("C432", flow().library());
  const Netlist b = generate_iscas85_like("C432", sized().library());
  ASSERT_EQ(a.gates().size(), b.gates().size());
  ASSERT_EQ(a.nets().size(), b.nets().size());
  for (std::size_t g = 0; g < a.gates().size(); ++g) {
    EXPECT_EQ(a.gates()[g].cell_index, b.gates()[g].cell_index);
    EXPECT_EQ(a.gates()[g].fanin_nets, b.gates()[g].fanin_nets);
    EXPECT_EQ(a.gates()[g].output_net, b.gates()[g].output_net);
  }
}

TEST(SizedLibrary, RejectsLadderWithoutUnitRung) {
  EXPECT_THROW(SizedLibrary(flow().library(), flow().config().electrical,
                            flow().library_opc_results(),
                            flow().boundary_model(), flow().config().bins,
                            {0.5, 2.0}),
               PreconditionError);
}

TEST(WhatIf, SizingSwapMatchesFullRunOnMutatedNetlist) {
  const Netlist nl = generate_iscas85_like("C432", sized().library());
  const Sta sta(nl, sized().characterized());
  const StaResult before = sta.run(UnitScale{});

  // Pick a few gates and swap each one rung up.
  for (const std::size_t g : {std::size_t{5}, std::size_t{40},
                              std::size_t{111}}) {
    const std::size_t to = sized().upsized(nl.gates()[g].cell_index);
    const StaResult what_if =
        sta.run_what_if(UnitScale{}, before, {{g, to}}, {});

    Netlist mutated = nl;
    mutated.set_gate_cell(g, to);
    const Sta sta_mut(mutated, sized().characterized());
    const StaResult full = sta_mut.run(UnitScale{});
    ASSERT_EQ(full.arrival_ps.size(), what_if.arrival_ps.size());
    for (std::size_t ni = 0; ni < full.arrival_ps.size(); ++ni) {
      EXPECT_DOUBLE_EQ(full.arrival_ps[ni], what_if.arrival_ps[ni]) << ni;
      EXPECT_DOUBLE_EQ(full.slew_ps[ni], what_if.slew_ps[ni]) << ni;
    }
    EXPECT_DOUBLE_EQ(full.critical_delay_ps, what_if.critical_delay_ps);
  }
}

TEST(WhatIf, CommittedSwapMatchesFreshSta) {
  Netlist nl = generate_iscas85_like("C432", sized().library());
  Sta sta(nl, sized().characterized());
  const std::size_t g = 17;
  const std::size_t to = sized().upsized(nl.gates()[g].cell_index);
  nl.set_gate_cell(g, to);
  sta.update_gate_master(g);
  const Sta fresh(nl, sized().characterized());
  const StaResult a = sta.run(UnitScale{});
  const StaResult b = fresh.run(UnitScale{});
  EXPECT_DOUBLE_EQ(a.critical_delay_ps, b.critical_delay_ps);
  for (std::size_t ni = 0; ni < a.arrival_ps.size(); ++ni)
    EXPECT_DOUBLE_EQ(a.arrival_ps[ni], b.arrival_ps[ni]) << ni;
}

TEST(NpsAfterShift, MatchesShiftedPlacementExtraction) {
  const Netlist nl = generate_iscas85_like("C432", sized().library());
  const Placement placement(nl, flow().config().placement);
  const auto before = extract_nps(placement);
  const Nm site = nl.library().master(0).tech().site_width;

  std::size_t tested = 0;
  for (std::size_t g = 0; g < nl.gates().size() && tested < 8; ++g) {
    const auto [lo, hi] = placement.shift_range(g);
    for (const Nm dx : {site, -site, 2 * site, -2 * site}) {
      if (dx > hi || dx < lo || dx == 0.0) continue;
      const auto updates = nps_after_shift(placement, g, dx);

      Placement shifted = placement;
      shifted.shift_instance(g, dx);
      const auto after = extract_nps(shifted);

      std::vector<char> touched(nl.gates().size(), 0);
      for (const NpsUpdate& u : updates) {
        touched[u.gate] = 1;
        EXPECT_DOUBLE_EQ(u.nps.lt, after[u.gate].lt) << u.gate;
        EXPECT_DOUBLE_EQ(u.nps.rt, after[u.gate].rt) << u.gate;
        EXPECT_DOUBLE_EQ(u.nps.lb, after[u.gate].lb) << u.gate;
        EXPECT_DOUBLE_EQ(u.nps.rb, after[u.gate].rb) << u.gate;
      }
      // Everything outside the update set must be untouched by the shift.
      for (std::size_t o = 0; o < nl.gates().size(); ++o) {
        if (touched[o]) continue;
        EXPECT_DOUBLE_EQ(before[o].lt, after[o].lt) << o;
        EXPECT_DOUBLE_EQ(before[o].rt, after[o].rt) << o;
        EXPECT_DOUBLE_EQ(before[o].lb, after[o].lb) << o;
        EXPECT_DOUBLE_EQ(before[o].rb, after[o].rb) << o;
      }
      ++tested;
    }
  }
  EXPECT_GT(tested, 0u);
}

TEST(NpsAfterShift, RejectsOutOfRangeShift) {
  const Netlist nl = generate_iscas85_like("C432", sized().library());
  const Placement placement(nl, flow().config().placement);
  const auto [lo, hi] = placement.shift_range(0);
  EXPECT_THROW(nps_after_shift(placement, 0, hi + 1000.0),
               PreconditionError);
}

/// Independent recomputation of the optimizer's committed worst slack:
/// fresh nps extraction from its placement, fresh version binding, a
/// fresh SvaCornerScale, and a fresh full STA run.
double recompute_worst_slack(const EcoOptimizer& opt) {
  const auto nps = extract_nps(opt.placement());
  const auto versions =
      assign_versions(nps, sized().context_library().bins());
  const SvaCornerScale wc(opt.netlist(), sized().context_library(), versions,
                          opt.config().budget, Corner::Worst,
                          opt.config().arc_policy, &nps,
                          &sized().context_cache());
  const Sta sta(opt.netlist(), sized().characterized(), opt.config().sta);
  return opt.config().clock_period_ps - sta.run(wc).critical_delay_ps;
}

TEST(Eco, C432ConvergesFromFailingClock) {
  EcoConfig cfg = eco_config();  // auto clock: 97% of the SVA WC delay
  EcoOptimizer opt(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  EXPECT_LT(opt.worst_slack_ps(), 0.0);  // unoptimized design fails

  const EcoResult result = opt.run();
  EXPECT_TRUE(result.met_timing);
  EXPECT_GE(result.final_worst_slack_ps, 0.0);
  EXPECT_GT(result.moves_committed(), 0u);
  EXPECT_LT(result.initial_worst_slack_ps, 0.0);
  EXPECT_EQ(result.trajectory.back().worst_slack_ps,
            result.final_worst_slack_ps);
  // Worst slack is monotone along the trajectory (every committed move
  // had positive gain on the worst path).
  double prev = result.initial_worst_slack_ps;
  for (const EcoMoveRecord& m : result.trajectory) {
    EXPECT_GT(m.worst_slack_ps, prev);
    prev = m.worst_slack_ps;
  }
}

TEST(Eco, CommittedStateIsExact) {
  EcoConfig cfg = eco_config();
  EcoOptimizer opt(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  opt.run();
  // The incrementally maintained worst slack equals a from-scratch
  // recomputation, bit for bit.
  EXPECT_DOUBLE_EQ(opt.worst_slack_ps(), recompute_worst_slack(opt));
}

TEST(Eco, SvaCornerClosesCheaperThanTraditional) {
  // Both optimizers chase the same clock: 97% of the *SVA* worst-case
  // delay.  The traditional corner sees the same physical design as
  // slower (uniform full-budget pessimism), so it must buy more drive
  // strength to satisfy the same sign-off check -- the paper's
  // over-design argument, measured.
  EcoConfig sva_cfg = eco_config();
  EcoOptimizer sva_opt(sized(),
                       generate_iscas85_like("C432", sized().library()),
                       flow().config().placement, sva_cfg);
  const EcoResult sva = sva_opt.run();
  ASSERT_TRUE(sva.met_timing);

  EcoConfig trad_cfg = eco_config();
  trad_cfg.mode = EcoCornerMode::TraditionalWorst;
  trad_cfg.clock_period_ps = sva.clock_period_ps;
  EcoOptimizer trad_opt(sized(),
                        generate_iscas85_like("C432", sized().library()),
                        flow().config().placement, trad_cfg);
  const EcoResult trad = trad_opt.run();
  ASSERT_TRUE(trad.met_timing);

  // The headline claim: fewer and smaller upsizes under the SVA corner.
  EXPECT_LT(sva.upsizes, trad.upsizes);
  EXPECT_LT(sva.upsize_area_delta, trad.upsize_area_delta);
}

TEST(Eco, TrajectoryIsScheduleIndependent) {
  std::vector<EcoResult> results;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    EcoConfig cfg = eco_config();
    EcoOptimizer opt(sized(),
                     generate_iscas85_like("C432", sized().library()),
                     flow().config().placement, cfg);
    ThreadPool pool(threads);
    results.push_back(opt.run(&pool));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    const EcoResult& a = results[0];
    const EcoResult& b = results[i];
    ASSERT_EQ(a.moves_committed(), b.moves_committed()) << i;
    for (std::size_t m = 0; m < a.trajectory.size(); ++m) {
      EXPECT_EQ(a.trajectory[m].kind, b.trajectory[m].kind);
      EXPECT_EQ(a.trajectory[m].gate, b.trajectory[m].gate);
      EXPECT_EQ(a.trajectory[m].detail, b.trajectory[m].detail);
      EXPECT_DOUBLE_EQ(a.trajectory[m].gain_ps, b.trajectory[m].gain_ps);
      EXPECT_DOUBLE_EQ(a.trajectory[m].worst_slack_ps,
                       b.trajectory[m].worst_slack_ps);
    }
    EXPECT_DOUBLE_EQ(a.final_worst_slack_ps, b.final_worst_slack_ps);
  }
}

TEST(Eco, RespaceOnlyLadderCommitsRespacesExactly) {
  // A one-rung ladder disables sizing entirely: the optimizer can only
  // re-space.  This exercises the respace commit path (placement shift,
  // nps/version/factor bookkeeping) end to end.
  static const SizedLibrary unsizable(
      flow().library(), flow().config().electrical,
      flow().library_opc_results(), flow().boundary_model(),
      flow().config().bins, {1.0});
  EcoConfig cfg = eco_config();
  cfg.auto_clock_fraction = 0.99;  // small deficit a few respaces can dent
  cfg.min_gain_ps = 0.001;
  EcoOptimizer opt(unsizable,
                   generate_iscas85_like("C432", unsizable.library()),
                   flow().config().placement, cfg);
  const double initial = opt.worst_slack_ps();
  const EcoResult result = opt.run();

  EXPECT_EQ(result.upsizes, 0u);
  EXPECT_EQ(result.downsizes, 0u);
  EXPECT_GT(result.respaces, 0u);
  EXPECT_GT(result.final_worst_slack_ps, initial);

  // Committed respace state equals a from-scratch recomputation.
  const auto nps = extract_nps(opt.placement());
  const auto versions =
      assign_versions(nps, unsizable.context_library().bins());
  const SvaCornerScale wc(opt.netlist(), unsizable.context_library(),
                          versions, cfg.budget, Corner::Worst,
                          cfg.arc_policy, &nps,
                          &unsizable.context_cache());
  const Sta sta(opt.netlist(), unsizable.characterized(), cfg.sta);
  EXPECT_DOUBLE_EQ(opt.worst_slack_ps(),
                   opt.config().clock_period_ps -
                       sta.run(wc).critical_delay_ps);
}

TEST(Eco, TraditionalModeEnumeratesNoRespaces) {
  EcoConfig cfg = eco_config();
  cfg.mode = EcoCornerMode::TraditionalWorst;
  EcoOptimizer opt(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  const EcoResult result = opt.run();
  EXPECT_EQ(result.respaces, 0u);
}

TEST(Eco, CancelledRunStopsBetweenCommitsWithCleanPrefix) {
  EcoConfig cfg = eco_config();
  EcoOptimizer opt(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  CancelToken token;
  token.request_cancel();
  const EcoResult result = opt.run(nullptr, &token);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.met_timing);
  EXPECT_EQ(result.moves_committed(), 0u);  // tripped before iteration 1

  // A later run with a clear token continues from the committed state to
  // the same final result an uninterrupted run produces.
  EcoOptimizer fresh(sized(),
                     generate_iscas85_like("C432", sized().library()),
                     flow().config().placement, cfg);
  const EcoResult reference = fresh.run();
  const EcoResult continued = opt.run();
  EXPECT_FALSE(continued.cancelled);
  EXPECT_EQ(continued.moves_committed(), reference.moves_committed());
  EXPECT_EQ(continued.final_worst_slack_ps, reference.final_worst_slack_ps);
}

TEST(Eco, CheckpointRestoreResumesBitIdentically) {
  // Reference: one uninterrupted run.
  EcoConfig cfg = eco_config();
  EcoOptimizer full(sized(), generate_iscas85_like("C432", sized().library()),
                    flow().config().placement, cfg);
  const EcoResult reference = full.run();
  ASSERT_GE(reference.moves_committed(), 2u);

  // Interrupted run: a max_moves cap stands in for a mid-run cancellation
  // (both stop between commits, and the greedy prefix is independent of
  // the cap -- which is why max_moves is not part of the journal
  // identity).  Journal the half-way state.
  EcoConfig capped = cfg;
  capped.max_moves = reference.moves_committed() / 2;
  EcoOptimizer interrupted(
      sized(), generate_iscas85_like("C432", sized().library()),
      flow().config().placement, capped);
  const EcoResult prefix = interrupted.run();
  ASSERT_EQ(prefix.moves_committed(), capped.max_moves);
  const std::string ckpt = ::testing::TempDir() + "sva_opt_eco_resume.ckpt";
  interrupted.checkpoint(ckpt);

  // Restore under the full config (replay verifies every move's gain and
  // resulting slack bit-for-bit against the journal) and continue.
  EcoOptimizer resumed(sized(),
                       generate_iscas85_like("C432", sized().library()),
                       flow().config().placement, cfg);
  resumed.restore(ckpt);
  EXPECT_EQ(resumed.worst_slack_ps(), interrupted.worst_slack_ps());
  const EcoResult continued = resumed.run();
  EXPECT_FALSE(continued.cancelled);
  EXPECT_TRUE(continued.met_timing);
  EXPECT_EQ(continued.moves_committed(), reference.moves_committed());
  EXPECT_EQ(continued.final_worst_slack_ps, reference.final_worst_slack_ps);
  EXPECT_EQ(continued.candidates_evaluated, reference.candidates_evaluated);
  // The resume invariant, end to end: byte-identical trajectory CSV.
  EXPECT_EQ(trajectory_csv(continued), trajectory_csv(reference));
}

TEST(Eco, RestoreRefusesMismatchedIdentity) {
  EcoConfig cfg = eco_config();
  cfg.max_moves = 1;
  EcoOptimizer opt(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  opt.run();
  const std::string ckpt = ::testing::TempDir() + "sva_opt_eco_ident.ckpt";
  opt.checkpoint(ckpt);

  // Different circuit: the state hash refuses the journal.
  EcoOptimizer other(sized(),
                     generate_iscas85_like("C880", sized().library()),
                     flow().config().placement, cfg);
  EXPECT_THROW(other.restore(ckpt), Error);
  // A config change that shapes the trajectory (the pricing window) is
  // part of the identity too.
  EcoConfig wider = cfg;
  wider.near_critical_window_ps += 1.0;
  EcoOptimizer reshaped(sized(),
                        generate_iscas85_like("C432", sized().library()),
                        flow().config().placement, wider);
  EXPECT_THROW(reshaped.restore(ckpt), Error);
  // restore() must come before any committed move.
  EcoOptimizer ran(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  ran.run();
  EXPECT_THROW(ran.restore(ckpt), Error);
}

TEST(Eco, RendersTrajectoryTableAndCsv) {
  EcoConfig cfg = eco_config();
  cfg.max_moves = 2;
  EcoOptimizer opt(sized(), generate_iscas85_like("C432", sized().library()),
                   flow().config().placement, cfg);
  const EcoResult result = opt.run();
  const std::string table = trajectory_table(result);
  EXPECT_NE(table.find("Gain ps"), std::string::npos);
  EXPECT_NE(table.find("C432"), std::string::npos);
  const std::string csv = trajectory_csv(result);
  EXPECT_NE(csv.find("move,kind,gate,detail,gain_ps,worst_slack_ps,"
                     "area_delta"),
            std::string::npos);
  // One header line plus one line per committed move.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            result.moves_committed() + 1);
}

}  // namespace
}  // namespace sva
