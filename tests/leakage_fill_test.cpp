// Tests for context-aware leakage estimation and dummy-poly fill.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/leakage.hpp"
#include "place/dummy_fill.hpp"

namespace sva {
namespace {

const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

struct Prepared {
  Netlist netlist = flow().make_benchmark("C432");
  Placement placement = flow().make_placement(netlist);
  std::vector<InstanceNps> nps = extract_nps(placement);
  std::vector<VersionKey> versions =
      assign_versions(nps, flow().config().bins);
};

Prepared& prepared() {
  static Prepared p;
  return p;
}

// ---------------------------------------------------------------- Leakage

TEST(Leakage, DeviceModelExponentialInLength) {
  const LeakageModel model;
  const double at_nom = model.device_leakage_na(1000.0, 90.0, 90.0);
  EXPECT_DOUBLE_EQ(at_nom, model.i0_na);
  const double shorter = model.device_leakage_na(1000.0, 78.0, 90.0);
  EXPECT_NEAR(shorter / at_nom, std::exp(12.0 / model.l_slope), 1e-9);
  const double longer = model.device_leakage_na(1000.0, 102.0, 90.0);
  EXPECT_LT(longer, at_nom);
}

TEST(Leakage, ScalesWithWidth) {
  const LeakageModel model;
  EXPECT_NEAR(model.device_leakage_na(2000.0, 90.0, 90.0),
              2.0 * model.device_leakage_na(1000.0, 90.0, 90.0), 1e-12);
}

TEST(Leakage, WorstCaseOrderings) {
  auto& p = prepared();
  const LeakageAnalysis a =
      analyze_leakage(p.netlist, flow().context_library(), p.versions,
                      p.nps, flow().config().budget);
  // Worst cases exceed nominals in both methodologies.
  EXPECT_GT(a.worst_traditional_na, a.nominal_traditional_na);
  EXPECT_GT(a.worst_context_na, a.nominal_context_na);
  // The context-aware worst case removes pessimism.
  EXPECT_LT(a.worst_context_na, a.worst_traditional_na);
  EXPECT_GT(a.worst_case_ratio(), 1.0);
}

TEST(Leakage, NominalContextHigherBecauseDevicesPrintThin) {
  auto& p = prepared();
  const LeakageAnalysis a =
      analyze_leakage(p.netlist, flow().context_library(), p.versions,
                      p.nps, flow().config().budget);
  // Most devices print below drawn length, so realistic nominal leakage
  // exceeds the drawn-length estimate (the leakage analogue of the
  // paper's "nominal timing improves").
  EXPECT_GT(a.nominal_context_na, a.nominal_traditional_na);
}

TEST(Leakage, ZeroBudgetCollapsesWorstToNominal) {
  auto& p = prepared();
  CdBudget budget = flow().config().budget;
  budget.total_fraction = 1e-9;
  budget.pitch_share = 0.0;
  budget.focus_share = 0.0;
  const LeakageAnalysis a = analyze_leakage(
      p.netlist, flow().context_library(), p.versions, p.nps, budget);
  EXPECT_NEAR(a.worst_traditional_na, a.nominal_traditional_na,
              1e-3 * a.nominal_traditional_na);
  EXPECT_NEAR(a.worst_context_na, a.nominal_context_na,
              1e-3 * a.nominal_context_na);
}

// -------------------------------------------------------------- DummyFill

TEST(DummyFill, PlanOnlyFillsWideGaps) {
  auto& p = prepared();
  const DummyFillConfig config;
  const DummyFillPlan plan = plan_dummy_fill(p.placement, config);
  EXPECT_GT(plan.count(), 0u);
  // Every planned dummy keeps clear spacing to both neighbours' outlines.
  const CellLibrary& lib = p.netlist.library();
  for (const auto& [row, x] : plan.lines) {
    for (std::size_t gi : p.placement.rows()[row]) {
      const PlacedInstance& inst = p.placement.instances()[gi];
      const Nm w =
          lib.master(p.netlist.gates()[gi].cell_index).width();
      const bool overlaps =
          x < inst.x + w && inst.x < x + config.fill_width;
      EXPECT_FALSE(overlaps) << "dummy overlaps cell at row " << row;
    }
  }
}

TEST(DummyFill, AppliedLayoutGainsDummyPoly) {
  auto& p = prepared();
  const DummyFillPlan plan = plan_dummy_fill(p.placement);
  std::size_t with_dummy = 0;
  for (std::size_t r = 0; r < p.placement.rows().size(); ++r) {
    Layout row = p.placement.row_layout(r, nullptr);
    const std::size_t before = row.size();
    apply_dummy_fill(row, plan, r, CellTech{});
    with_dummy += row.size() - before;
  }
  EXPECT_EQ(with_dummy, plan.count());
}

TEST(DummyFill, NpsNeverIncrease) {
  auto& p = prepared();
  const DummyFillPlan plan = plan_dummy_fill(p.placement);
  const auto filled = nps_with_fill(p.placement, plan);
  ASSERT_EQ(filled.size(), p.nps.size());
  for (std::size_t gi = 0; gi < filled.size(); ++gi) {
    EXPECT_LE(filled[gi].lt, p.nps[gi].lt + 1e-9);
    EXPECT_LE(filled[gi].rt, p.nps[gi].rt + 1e-9);
    EXPECT_LE(filled[gi].lb, p.nps[gi].lb + 1e-9);
    EXPECT_LE(filled[gi].rb, p.nps[gi].rb + 1e-9);
  }
}

TEST(DummyFill, FillDensifiesClasses) {
  auto& p = prepared();
  const DummyFillPlan plan = plan_dummy_fill(p.placement);
  const auto filled = nps_with_fill(p.placement, plan);
  const auto v_plain = assign_versions(p.nps, flow().config().bins);
  const auto v_filled = assign_versions(filled, flow().config().bins);
  // At least some instances move to denser bins; none move to looser.
  std::size_t denser = 0;
  for (std::size_t gi = 0; gi < v_plain.size(); ++gi) {
    EXPECT_LE(v_filled[gi].lt, v_plain[gi].lt);
    EXPECT_LE(v_filled[gi].rt, v_plain[gi].rt);
    if (v_filled[gi].lt < v_plain[gi].lt ||
        v_filled[gi].rt < v_plain[gi].rt)
      ++denser;
  }
  EXPECT_GT(denser, 10u);
}

TEST(DummyFill, FillReducesWorstCaseLeakage) {
  auto& p = prepared();
  const DummyFillPlan plan = plan_dummy_fill(p.placement);
  const auto filled = nps_with_fill(p.placement, plan);
  const auto v_filled = assign_versions(filled, flow().config().bins);
  const LeakageAnalysis without =
      analyze_leakage(p.netlist, flow().context_library(), p.versions,
                      p.nps, flow().config().budget);
  const LeakageAnalysis with =
      analyze_leakage(p.netlist, flow().context_library(), v_filled,
                      filled, flow().config().budget);
  EXPECT_LT(with.worst_context_na, without.worst_context_na);
}

TEST(DummyFill, RejectsUnprintableConfig) {
  auto& p = prepared();
  DummyFillConfig bad;
  bad.min_gap_to_fill = 100.0;  // could not print on both sides
  EXPECT_THROW(plan_dummy_fill(p.placement, bad), PreconditionError);
}

}  // namespace
}  // namespace sva
