// Tests for the place module: row placement invariants, whitespace
// distribution, nps context extraction, and full-chip OPC plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "netlist/iscas85.hpp"
#include "place/context.hpp"
#include "place/fullchip_opc.hpp"
#include "place/placement.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

const CellLibrary& lib() {
  static const CellLibrary library = build_standard_library();
  return library;
}

const Netlist& c432() {
  static const Netlist nl = generate_iscas85_like("C432", lib());
  return nl;
}

Placement place_c432() { return Placement(c432(), PlacementConfig{}); }

TEST(Placement, EveryGatePlacedExactlyOnce) {
  const Placement p = place_c432();
  EXPECT_EQ(p.instances().size(), c432().gates().size());
  std::size_t in_rows = 0;
  for (const auto& row : p.rows()) in_rows += row.size();
  EXPECT_EQ(in_rows, c432().gates().size());
}

TEST(Placement, NoOverlapsWithinRows) {
  const Placement p = place_c432();
  for (const auto& row : p.rows()) {
    for (std::size_t i = 1; i < row.size(); ++i) {
      const auto& prev = p.instances()[row[i - 1]];
      const auto& cur = p.instances()[row[i]];
      const Nm prev_end =
          prev.x + lib().master(c432().gates()[row[i - 1]].cell_index).width();
      EXPECT_GE(cur.x, prev_end - 1e-9);
    }
  }
}

TEST(Placement, RowsFitWithinRowWidth) {
  const Placement p = place_c432();
  for (const auto& row : p.rows()) {
    if (row.empty()) continue;
    const auto& last = p.instances()[row.back()];
    const Nm end =
        last.x + lib().master(c432().gates()[row.back()].cell_index).width();
    EXPECT_LE(end, p.row_width() + 1e-6);
  }
}

TEST(Placement, UtilizationApproximatelyHonored) {
  PlacementConfig config;
  config.utilization = 0.7;
  const Placement p(c432(), config);
  Nm cells = 0.0;
  for (const auto& g : c432().gates())
    cells += lib().master(g.cell_index).width();
  const Nm area = p.row_width() * static_cast<double>(p.rows().size());
  EXPECT_NEAR(cells / area, 0.7, 0.1);
}

TEST(Placement, MixOfAbutmentsAndGaps) {
  const Placement p = place_c432();
  std::size_t abut = 0, gaps = 0;
  for (std::size_t gi = 0; gi < c432().gates().size(); ++gi) {
    const Nm gap = p.gap_left(gi, -1.0);
    if (gap == -1.0) continue;  // row start
    if (gap < 1e-9)
      ++abut;
    else
      ++gaps;
  }
  EXPECT_GT(abut, 10u);
  EXPECT_GT(gaps, 10u);
}

TEST(Placement, GapsAreSiteMultiples) {
  const CellTech tech;
  const Placement p = place_c432();
  for (std::size_t gi = 0; gi < c432().gates().size(); ++gi) {
    const Nm gap = p.gap_left(gi, -1.0);
    if (gap <= 0.0) continue;
    const double sites = gap / tech.site_width;
    EXPECT_NEAR(sites, std::round(sites), 1e-6);
  }
}

TEST(Placement, NeighborsConsistent) {
  const Placement p = place_c432();
  for (std::size_t gi = 0; gi < c432().gates().size(); ++gi) {
    const std::size_t l = p.left_neighbor(gi);
    if (l != static_cast<std::size_t>(-1)) {
      EXPECT_EQ(p.right_neighbor(l), gi);
    }
    const std::size_t r = p.right_neighbor(gi);
    if (r != static_cast<std::size_t>(-1)) {
      EXPECT_EQ(p.left_neighbor(r), gi);
    }
  }
}

TEST(Placement, DeterministicForSeed) {
  const Placement a(c432(), PlacementConfig{});
  const Placement b(c432(), PlacementConfig{});
  for (std::size_t gi = 0; gi < c432().gates().size(); ++gi)
    EXPECT_DOUBLE_EQ(a.instances()[gi].x, b.instances()[gi].x);
}

TEST(Placement, SeedChangesWhitespace) {
  PlacementConfig c2;
  c2.seed = 99;
  const Placement a(c432(), PlacementConfig{});
  const Placement b(c432(), c2);
  bool any_diff = false;
  for (std::size_t gi = 0; gi < c432().gates().size(); ++gi)
    any_diff |= a.instances()[gi].x != b.instances()[gi].x;
  EXPECT_TRUE(any_diff);
}

TEST(Placement, RowLayoutTagsDecode) {
  const Placement p = place_c432();
  std::vector<long> tags;
  const Layout row = p.row_layout(0, &tags);
  ASSERT_EQ(tags.size(), row.size());
  bool found_gate_tag = false;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] < 0) continue;
    found_gate_tag = true;
    const std::size_t gi = Placement::tag_gate(tags[i]);
    const std::size_t poly = Placement::tag_poly(tags[i]);
    EXPECT_LT(gi, c432().gates().size());
    EXPECT_LT(poly,
              lib().master(c432().gates()[gi].cell_index).gates().size());
    EXPECT_EQ(row.shapes()[i].layer, Layer::Poly);
  }
  EXPECT_TRUE(found_gate_tag);
}

// ----------------------------------------------------------------- Nps

TEST(Nps, RowEndIsIsolated) {
  const CellTech tech;
  const Placement p = place_c432();
  const std::vector<InstanceNps> nps = extract_nps(p);
  for (const auto& row : p.rows()) {
    if (row.empty()) continue;
    const auto& first = nps[row.front()];
    EXPECT_DOUBLE_EQ(first.lt, tech.radius_of_influence);
    EXPECT_DOUBLE_EQ(first.lb, tech.radius_of_influence);
    const auto& last = nps[row.back()];
    EXPECT_DOUBLE_EQ(last.rt, tech.radius_of_influence);
    EXPECT_DOUBLE_EQ(last.rb, tech.radius_of_influence);
  }
}

TEST(Nps, ClampedToRoi) {
  const CellTech tech;
  const std::vector<InstanceNps> nps = extract_nps(place_c432());
  for (const auto& n : nps) {
    for (Nm v : {n.lt, n.rt, n.lb, n.rb}) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, tech.radius_of_influence);
    }
  }
}

TEST(Nps, AbuttedNeighborsAreCloserThanGapped) {
  const Placement p = place_c432();
  const std::vector<InstanceNps> nps = extract_nps(p);
  double abut_sum = 0.0, gap_sum = 0.0;
  std::size_t abut_n = 0, gap_n = 0;
  for (std::size_t gi = 0; gi < c432().gates().size(); ++gi) {
    const Nm gap = p.gap_left(gi, -1.0);
    if (gap < 0.0) continue;
    if (gap < 1e-9) {
      abut_sum += nps[gi].lt;
      ++abut_n;
    } else {
      gap_sum += nps[gi].lt;
      ++gap_n;
    }
  }
  ASSERT_GT(abut_n, 0u);
  ASSERT_GT(gap_n, 0u);
  EXPECT_LT(abut_sum / static_cast<double>(abut_n),
            gap_sum / static_cast<double>(gap_n));
}

TEST(Nps, StubsMakeTopBottomDiffer) {
  // With boundary stubs on some masters, at least some instances must see
  // different top and bottom spacings on a side.
  const std::vector<InstanceNps> nps = extract_nps(place_c432());
  std::size_t differing = 0;
  for (const auto& n : nps)
    if (std::abs(n.lt - n.lb) > 1.0 || std::abs(n.rt - n.rb) > 1.0)
      ++differing;
  EXPECT_GT(differing, 5u);
}

TEST(Nps, VersionAssignment) {
  const ContextBins bins;
  const std::vector<InstanceNps> nps = extract_nps(place_c432());
  const auto versions = assign_versions(nps, bins);
  ASSERT_EQ(versions.size(), nps.size());
  // Multiple distinct versions must occur in a realistic placement.
  std::set<std::size_t> distinct;
  for (const auto& v : versions) distinct.insert(version_index(v, 3));
  EXPECT_GE(distinct.size(), 5u);
}

// ------------------------------------------------------------ FullChipOpc

TEST(FullChipOpc, SmallCircuitAllDevicesMeasured) {
  // A small hand netlist keeps the runtime negligible.
  Netlist nl(lib(), "mini");
  const auto a = nl.add_primary_input("a");
  const auto b = nl.add_primary_input("b");
  const auto x = nl.add_gate("u1", lib().index_of("INV_X1"), {a});
  const auto y = nl.add_gate("u2", lib().index_of("NAND2_X1"), {x, b});
  nl.mark_primary_output(y);
  const Placement p(nl, PlacementConfig{});

  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const OpcEngine engine(proc, OpcConfig{});
  const FullChipOpcResult result = full_chip_opc(p, engine);

  ASSERT_EQ(result.device_cd.size(), 2u);
  for (std::size_t gi = 0; gi < 2; ++gi)
    for (Nm cd : result.device_cd[gi]) {
      EXPECT_GT(cd, 60.0);
      EXPECT_LT(cd, 130.0);
    }
  EXPECT_GT(result.images_simulated, 0u);
  EXPECT_GT(result.lines_corrected, 0u);
}

// Property sweep: placement invariants hold across utilizations.
class UtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweep, ValidRows) {
  PlacementConfig config;
  config.utilization = GetParam();
  const Placement p(c432(), config);
  std::size_t placed = 0;
  for (const auto& row : p.rows()) {
    placed += row.size();
    for (std::size_t i = 1; i < row.size(); ++i) {
      const auto& prev = p.instances()[row[i - 1]];
      const auto& cur = p.instances()[row[i]];
      EXPECT_GE(cur.x,
                prev.x +
                    lib().master(c432().gates()[row[i - 1]].cell_index)
                        .width() -
                    1e-9);
    }
  }
  EXPECT_EQ(placed, c432().gates().size());
}

INSTANTIATE_TEST_SUITE_P(Utils, UtilizationSweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.85, 0.95));

}  // namespace
}  // namespace sva
