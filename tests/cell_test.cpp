// Tests for the cell module: masters, the 10-cell library, NLDM tables,
// characterization, library OPC, and the 81-version context expansion.

#include <gtest/gtest.h>

#include <set>

#include "cell/cell_master.hpp"
#include "cell/characterize.hpp"
#include "cell/context_library.hpp"
#include "cell/library.hpp"
#include "cell/library_opc.hpp"
#include "cell/nldm.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

const CellLibrary& lib() {
  static const CellLibrary library = build_standard_library();
  return library;
}

const LithoProcess& wafer_process() {
  static const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  return proc;
}

// ------------------------------------------------------------- CellMaster

TEST(CellMaster, GateAndDeviceGeometry) {
  const CellTech tech;
  CellMaster cell("TEST", 510.0, tech);
  const std::size_t gi = cell.add_gate(255.0, 90.0);
  cell.add_pin("A", false);
  cell.add_pin("Y", true);
  const std::size_t dp =
      cell.add_device("MP0", DeviceType::Pmos, gi, 1000.0, "A");
  const std::size_t dn =
      cell.add_device("MN0", DeviceType::Nmos, gi, 660.0, "A");
  cell.add_arc("A", "Y", {dp, dn});
  cell.validate();

  const Rect gr = cell.gate_rect(gi);
  EXPECT_DOUBLE_EQ(gr.x_lo, 210.0);
  EXPECT_DOUBLE_EQ(gr.x_hi, 300.0);
  EXPECT_DOUBLE_EQ(gr.y_lo, tech.poly_y_lo);

  const Rect pr = cell.device_gate_rect(dp);
  EXPECT_DOUBLE_EQ(pr.y_lo, tech.pmos_y_lo);
  EXPECT_DOUBLE_EQ(pr.height(), 1000.0);
  const Rect nr = cell.device_gate_rect(dn);
  EXPECT_DOUBLE_EQ(nr.y_lo, tech.nmos_y_lo);

  EXPECT_DOUBLE_EQ(cell.edge_clearance(dp, true), 210.0);
  EXPECT_DOUBLE_EQ(cell.edge_clearance(dp, false), 210.0);
  EXPECT_TRUE(cell.is_boundary_device(dp));
}

TEST(CellMaster, ValidateCatchesBadGeometry) {
  const CellTech tech;
  CellMaster cell("BAD", 200.0, tech);
  cell.add_gate(10.0, 90.0);  // sticks out on the left
  cell.add_pin("Y", true);
  EXPECT_THROW(cell.validate(), PreconditionError);
}

TEST(CellMaster, ValidateCatchesOverlappingGates) {
  const CellTech tech;
  CellMaster cell("BAD", 1000.0, tech);
  cell.add_gate(300.0, 90.0);
  cell.add_gate(350.0, 90.0);  // overlaps the first
  cell.add_pin("Y", true);
  EXPECT_THROW(cell.validate(), PreconditionError);
}

TEST(CellMaster, PinLookupThrowsOnMissing) {
  const CellTech tech;
  CellMaster cell("T", 500.0, tech);
  cell.add_pin("A", false);
  EXPECT_THROW(cell.pin("B"), PreconditionError);
}

TEST(CellMaster, LayoutShapeOrder) {
  const CellMaster& nor2 = lib().by_name("NOR2_X1");
  const Layout layout = nor2.layout();
  // Gates first, stubs next, diffusion last.
  for (std::size_t i = 0; i < nor2.gates().size(); ++i)
    EXPECT_EQ(layout.shapes()[i].layer, Layer::Poly);
  EXPECT_EQ(layout.shapes().back().layer, Layer::Diffusion);
  EXPECT_EQ(layout.size(), nor2.gates().size() + nor2.poly_stubs().size() +
                               2 /* diffusion strips */);
}

// ---------------------------------------------------------------- Library

TEST(Library, HasTenMasters) {
  EXPECT_EQ(lib().size(), 10u);
  const std::set<std::string> expected = {
      "INV_X1",  "INV_X2",  "BUF_X1",   "NAND2_X1", "NAND3_X1",
      "NOR2_X1", "NOR3_X1", "AOI21_X1", "OAI21_X1", "XOR2_X1"};
  std::set<std::string> actual;
  for (const auto& m : lib().masters()) actual.insert(m.name());
  EXPECT_EQ(actual, expected);
}

TEST(Library, AllMastersValid) {
  for (const auto& m : lib().masters()) EXPECT_NO_THROW(m.validate());
}

TEST(Library, WidthsAreSiteMultiples) {
  const CellTech tech;
  for (const auto& m : lib().masters()) {
    const double sites = m.width() / tech.site_width;
    EXPECT_NEAR(sites, std::round(sites), 1e-9) << m.name();
  }
}

TEST(Library, EveryInputPinHasAnArc) {
  for (const auto& m : lib().masters()) {
    for (const auto& p : m.pins()) {
      if (p.is_output) continue;
      bool found = false;
      for (const auto& a : m.arcs()) found |= a.input == p.name;
      EXPECT_TRUE(found) << m.name() << " pin " << p.name;
    }
  }
}

TEST(Library, InternalSpacingsCoverAllClasses) {
  // The library must contain dense (< contacted pitch) and isolated
  // internal spacings so Fig. 5's device classes all occur.
  const CellTech tech;
  bool has_dense = false;
  bool has_iso = false;
  for (const auto& m : lib().masters()) {
    for (std::size_t i = 1; i < m.gates().size(); ++i) {
      const Nm spacing =
          m.gates()[i].x_lo() - m.gates()[i - 1].x_hi();
      if (spacing < tech.contacted_pitch) has_dense = true;
      if (spacing >= tech.contacted_pitch) has_iso = true;
    }
  }
  EXPECT_TRUE(has_dense);
  EXPECT_TRUE(has_iso);
}

TEST(Library, IndexLookup) {
  EXPECT_EQ(lib().index_of("NAND2_X1"), 3u);
  EXPECT_EQ(lib().by_name("XOR2_X1").name(), "XOR2_X1");
  EXPECT_THROW(lib().index_of("DFF_X1"), PreconditionError);
  EXPECT_THROW(lib().master(10), PreconditionError);
}

TEST(Library, BoundaryClearanceRule) {
  // Every poly feature keeps >= 70 nm from the cell outline so abutted
  // neighbours are >= 140 nm apart and never bridge.
  for (const auto& m : lib().masters()) {
    for (std::size_t gi = 0; gi < m.gates().size(); ++gi) {
      const Rect g = m.gate_rect(gi);
      EXPECT_GE(g.x_lo, 70.0 - 1e-9) << m.name();
      EXPECT_LE(g.x_hi, m.width() - 70.0 + 1e-9) << m.name();
    }
    for (const Rect& s : m.poly_stubs()) {
      EXPECT_GE(s.x_lo, 70.0 - 1e-9) << m.name();
      EXPECT_LE(s.x_hi, m.width() - 70.0 + 1e-9) << m.name();
    }
  }
}

TEST(Library, StubSpacingIsPrintable) {
  // Boundary stubs must not bridge with their nearest gate: spacing at or
  // above the dense grating spacing.
  for (const auto& m : lib().masters()) {
    for (const auto& stub : m.poly_stubs()) {
      Nm nearest = 1e9;
      for (std::size_t gi = 0; gi < m.gates().size(); ++gi) {
        const Rect g = m.gate_rect(gi);
        if (!g.y_overlaps(stub)) continue;
        if (stub.x_hi <= g.x_lo) nearest = std::min(nearest, g.x_lo - stub.x_hi);
        if (stub.x_lo >= g.x_hi) nearest = std::min(nearest, stub.x_lo - g.x_hi);
      }
      EXPECT_GE(nearest, 140.0) << m.name();
    }
  }
}

// ---------------------------------------------------------------- NLDM

TEST(Nldm, ScaledMultipliesValues) {
  LookupTable2D d({1.0, 2.0}, {1.0, 2.0}, {10.0, 20.0, 30.0, 40.0});
  LookupTable2D s({1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0, 3.0, 4.0});
  const NldmTable table(d, s);
  const NldmTable scaled = table.scaled(1.1);
  EXPECT_NEAR(scaled.delay_ps(1.0, 1.0), 11.0, 1e-12);
  EXPECT_NEAR(scaled.output_slew_ps(2.0, 2.0), 4.4, 1e-12);
}

TEST(Nldm, RejectsMismatchedAxes) {
  LookupTable2D d({1.0, 2.0}, {1.0, 2.0}, {1, 2, 3, 4});
  LookupTable2D s({1.0, 2.0, 3.0}, {1.0, 2.0}, {1, 2, 3, 4, 5, 6});
  EXPECT_THROW(NldmTable(d, s), PreconditionError);
}

TEST(Nldm, CodecRoundTripIsBitIdentical) {
  LookupTable2D d({1.0, 2.0, 4.5}, {0.5, 2.0},
                  {10.0, 20.0, 30.0, 40.0, 50.0, 60.0});
  LookupTable2D s({1.0, 2.0, 4.5}, {0.5, 2.0},
                  {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const NldmTable table(d, s);
  ByteWriter w;
  serialize(w, table);
  ByteReader r(w.bytes());
  const NldmTable back = deserialize_nldm(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back.delay_table().values(), table.delay_table().values());
  EXPECT_EQ(back.slew_table().values(), table.slew_table().values());
  EXPECT_EQ(back.delay_ps(1.7, 1.1), table.delay_ps(1.7, 1.1));
  EXPECT_EQ(back.output_slew_ps(3.0, 0.9), table.output_slew_ps(3.0, 0.9));
}

TEST(Nldm, CodecRoundTripsCharacterizedArcs) {
  // Real characterized tables, not synthetic ones.
  const CellLibrary lib = build_standard_library(CellTech{});
  const CharacterizedLibrary chars =
      characterize_library(lib, ElectricalTech{});
  for (const CharacterizedCell& cell : chars.cells) {
    for (const CharacterizedArc& arc : cell.arcs) {
      ByteWriter w;
      serialize(w, arc.nldm);
      ByteReader r(w.bytes());
      const NldmTable back = deserialize_nldm(r);
      EXPECT_EQ(back.delay_table().values(), arc.nldm.delay_table().values());
      EXPECT_EQ(back.slew_table().values(), arc.nldm.slew_table().values());
    }
  }
}

TEST(Nldm, DecoderRejectsMismatchedOrCorruptTables) {
  {
    // Delay and slew tables with different axes: invalid as an NldmTable
    // even though each is a valid LookupTable2D.
    ByteWriter w;
    serialize(w, LookupTable2D({1.0, 2.0}, {1.0, 2.0}, {1, 2, 3, 4}));
    serialize(w, LookupTable2D({1.0, 3.0}, {1.0, 2.0}, {1, 2, 3, 4}));
    ByteReader r(w.bytes());
    EXPECT_THROW(deserialize_nldm(r), SerializeError);
  }
  {
    // Truncated stream.
    ByteWriter w;
    serialize(w, LookupTable2D({1.0, 2.0}, {1.0, 2.0}, {1, 2, 3, 4}));
    ByteReader r(std::string_view(w.bytes()).substr(0, w.size() - 3));
    EXPECT_THROW(deserialize_nldm(r), SerializeError);
  }
}

// ----------------------------------------------------------- Characterize

TEST(Characterize, DelayIncreasesWithLoadAndSlew) {
  const auto charlib = characterize_library(lib());
  for (const auto& cell : charlib.cells) {
    for (const auto& arc : cell.arcs) {
      EXPECT_LT(arc.nldm.delay_ps(20.0, 2.0), arc.nldm.delay_ps(20.0, 30.0));
      EXPECT_LT(arc.nldm.delay_ps(10.0, 8.0), arc.nldm.delay_ps(100.0, 8.0));
      EXPECT_GT(arc.nldm.delay_ps(5.0, 0.5), 0.0);
    }
  }
}

TEST(Characterize, PinCapsPositiveAndWidthOrdered) {
  const auto charlib = characterize_library(lib());
  for (const auto& cell : charlib.cells)
    for (const auto& p : cell.master.pins())
      if (!p.is_output) {
        EXPECT_GT(p.input_cap_ff, 0.0);
      }
  // INV_X2 has two fingers on pin A => roughly twice INV_X1's input cap.
  const double c1 =
      charlib.cells[lib().index_of("INV_X1")].master.pin("A").input_cap_ff;
  const double c2 =
      charlib.cells[lib().index_of("INV_X2")].master.pin("A").input_cap_ff;
  EXPECT_NEAR(c2 / c1, 2.0, 0.01);
}

TEST(Characterize, StackedCellsAreSlower) {
  const auto charlib = characterize_library(lib());
  const auto& inv = charlib.cells[lib().index_of("INV_X1")];
  const auto& nand3 = charlib.cells[lib().index_of("NAND3_X1")];
  EXPECT_GT(nand3.arc_for("A").nldm.delay_ps(20.0, 8.0),
            inv.arc_for("A").nldm.delay_ps(20.0, 8.0));
}

TEST(Characterize, ArcForThrowsOnUnknownPin) {
  const auto charlib = characterize_library(lib());
  EXPECT_THROW(charlib.cells[0].arc_for("Z"), PreconditionError);
}

TEST(Characterize, DriveResistanceFilled) {
  const auto charlib = characterize_library(lib());
  for (const auto& cell : charlib.cells)
    for (const auto& arc : cell.master.arcs())
      EXPECT_GT(arc.drive_resistance_kohm, 0.0);
}

// ------------------------------------------------------------ Library OPC

TEST(LibraryOpc, EnvironmentHasDummies) {
  const auto& master = lib().by_name("NAND2_X1");
  const Layout env = library_opc_environment(master, LibraryOpcConfig{});
  int dummies = 0;
  for (const auto& s : env.shapes())
    if (s.layer == Layer::DummyPoly) ++dummies;
  EXPECT_EQ(dummies, 2);
  // One dummy on each side of the cell.
  const auto dums = env.on_layer(Layer::DummyPoly);
  EXPECT_LT(dums[0].x_hi, 0.0);
  EXPECT_GT(dums[1].x_lo, master.width());
}

TEST(LibraryOpc, EveryDeviceGetsACd) {
  OpcEngine engine(wafer_process(), OpcConfig{});
  for (const auto& master : lib().masters()) {
    const auto result = library_opc_cell(master, engine);
    ASSERT_EQ(result.device_cd.size(), master.devices().size());
    for (std::size_t d = 0; d < result.device_cd.size(); ++d) {
      EXPECT_GT(result.device_cd[d], 60.0)
          << master.name() << " device " << d;
      EXPECT_LT(result.device_cd[d], 130.0)
          << master.name() << " device " << d;
      EXPECT_GT(result.device_mask_width[d], 0.0);
    }
  }
}

TEST(LibraryOpc, AllCellsBatch) {
  OpcEngine engine(wafer_process(), OpcConfig{});
  const auto results = library_opc_all(lib().masters(), engine);
  EXPECT_EQ(results.size(), lib().size());
}

// ------------------------------------------------------------ ContextBins

TEST(ContextBins, DefaultIsPaper81) {
  const ContextBins bins;
  EXPECT_EQ(bins.count(), 3u);
  EXPECT_EQ(bins.version_count(), 81u);
  EXPECT_EQ(bins.bin_of(100.0), 0u);
  EXPECT_EQ(bins.bin_of(399.9), 0u);
  EXPECT_EQ(bins.bin_of(400.0), 1u);
  EXPECT_EQ(bins.bin_of(599.9), 1u);
  EXPECT_EQ(bins.bin_of(600.0), 2u);
  EXPECT_EQ(bins.bin_of(5000.0), 2u);
  // Lower bin extremes as representatives ("to be pessimistic").
  EXPECT_DOUBLE_EQ(bins.representative(0), 300.0);
  EXPECT_DOUBLE_EQ(bins.representative(1), 400.0);
  EXPECT_DOUBLE_EQ(bins.representative(2), 600.0);
}

TEST(ContextBins, CustomSchemeValidation) {
  EXPECT_NO_THROW(ContextBins({350.0, 500.0, 650.0},
                              {250.0, 350.0, 500.0, 650.0}));
  EXPECT_THROW(ContextBins({500.0, 400.0}, {1.0, 2.0, 3.0}),
               PreconditionError);
  EXPECT_THROW(ContextBins({400.0}, {300.0}), PreconditionError);
}

TEST(VersionKey, RoundTrip) {
  for (std::size_t i = 0; i < 81; ++i) {
    const VersionKey key = version_key(i, 3);
    EXPECT_EQ(version_index(key, 3), i);
  }
  const VersionKey k{2, 1, 0, 2};
  EXPECT_EQ(version_key(version_index(k, 3), 3), k);
}

TEST(VersionKey, RejectsOutOfRange) {
  EXPECT_THROW(version_index(VersionKey{3, 0, 0, 0}, 3), PreconditionError);
  EXPECT_THROW(version_key(81, 3), PreconditionError);
}

// --------------------------------------------------------- ContextLibrary

struct ContextFixture {
  CharacterizedLibrary charlib = characterize_library(lib());
  OpcEngine engine{wafer_process(), OpcConfig{}};
  std::vector<LibraryOpcCellResult> opc_results =
      library_opc_all(lib().masters(), engine);
  LookupTable1D table{{150.0, 300.0, 450.0, 600.0},
                      {95.0, 91.0, 88.0, 85.0}};
  TableCdModel boundary{90.0, table, 600.0};
  ContextLibrary context{charlib, opc_results, boundary, ContextBins{}};
};

ContextFixture& fixture() {
  static ContextFixture f;
  return f;
}

TEST(ContextLibrary, InteriorDeviceIgnoresVersion) {
  auto& f = fixture();
  const std::size_t nand3 = lib().index_of("NAND3_X1");
  // Device on the middle gate (gate index 1) is interior.
  std::size_t middle_device = 0;
  for (std::size_t d = 0; d < lib().master(nand3).devices().size(); ++d)
    if (lib().master(nand3).devices()[d].gate_index == 1) middle_device = d;
  const Nm cd_a =
      f.context.device_printed_cd(nand3, VersionKey{0, 0, 0, 0},
                                  middle_device);
  const Nm cd_b =
      f.context.device_printed_cd(nand3, VersionKey{2, 2, 2, 2},
                                  middle_device);
  EXPECT_DOUBLE_EQ(cd_a, cd_b);
  EXPECT_DOUBLE_EQ(cd_a, f.context.interior_cd(nand3, middle_device));
}

TEST(ContextLibrary, BoundaryDeviceRespondsToVersion) {
  auto& f = fixture();
  const std::size_t inv = lib().index_of("INV_X1");
  // INV's single gate is boundary on both sides.
  const Nm dense =
      f.context.device_printed_cd(inv, VersionKey{0, 0, 0, 0}, 0);
  const Nm iso = f.context.device_printed_cd(inv, VersionKey{2, 2, 2, 2}, 0);
  EXPECT_GT(dense, iso);  // dense context prints larger
}

TEST(ContextLibrary, PmosAndNmosUseDifferentBins) {
  auto& f = fixture();
  const std::size_t inv = lib().index_of("INV_X1");
  const auto& devices = lib().master(inv).devices();
  std::size_t pmos = 0, nmos = 0;
  for (std::size_t d = 0; d < devices.size(); ++d)
    (devices[d].type == DeviceType::Pmos ? pmos : nmos) = d;
  // Version with dense top, iso bottom.
  const VersionKey v{0, 0, 2, 2};
  const Nm cd_p = f.context.device_printed_cd(inv, v, pmos);
  const Nm cd_n = f.context.device_printed_cd(inv, v, nmos);
  EXPECT_GT(cd_p, cd_n);
}

TEST(ContextLibrary, DeviceContextClampsToInternal) {
  auto& f = fixture();
  const std::size_t nand3 = lib().index_of("NAND3_X1");
  const auto& master = lib().master(nand3);
  // Left boundary device: its right side is the internal 160 nm spacing
  // regardless of version.
  std::size_t left_dev = 0;
  for (std::size_t d = 0; d < master.devices().size(); ++d)
    if (master.devices()[d].gate_index == master.leftmost_gate())
      left_dev = d;
  const auto ctx =
      f.context.device_context(nand3, VersionKey{2, 2, 2, 2}, left_dev);
  EXPECT_NEAR(ctx.s_right, 160.0, 1e-9);
}

TEST(ContextLibrary, ArcEffectiveLengthAveragesDevices) {
  auto& f = fixture();
  const std::size_t inv = lib().index_of("INV_X1");
  const VersionKey v{1, 1, 1, 1};
  const Nm l0 = f.context.device_printed_cd(inv, v, 0);
  const Nm l1 = f.context.device_printed_cd(inv, v, 1);
  EXPECT_NEAR(f.context.arc_effective_length(inv, v, 0), (l0 + l1) / 2.0,
              1e-9);
}

TEST(ContextLibrary, DelayScaleIsLengthRatio) {
  auto& f = fixture();
  const std::size_t inv = lib().index_of("INV_X1");
  const VersionKey v{0, 0, 0, 0};
  EXPECT_NEAR(f.context.arc_delay_scale(inv, v, 0),
              f.context.arc_effective_length(inv, v, 0) / 90.0, 1e-12);
}

// Property: every (cell, version) yields positive, physically bounded
// effective lengths for all arcs.
class AllVersions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllVersions, EffectiveLengthsBounded) {
  auto& f = fixture();
  const VersionKey v = version_key(GetParam(), 3);
  for (std::size_t ci = 0; ci < lib().size(); ++ci) {
    for (std::size_t ai = 0; ai < lib().master(ci).arcs().size(); ++ai) {
      const Nm l = f.context.arc_effective_length(ci, v, ai);
      EXPECT_GT(l, 60.0);
      EXPECT_LT(l, 120.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VersionSweep, AllVersions,
                         ::testing::Values(0u, 1u, 13u, 40u, 41u, 60u,
                                           79u, 80u));

}  // namespace
}  // namespace sva
