// Tests for the netlist module: netlist invariants, topological ordering,
// and the ISCAS85-like benchmark generator.

#include <gtest/gtest.h>

#include <set>

#include "netlist/iscas85.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

const CellLibrary& lib() {
  static const CellLibrary library = build_standard_library();
  return library;
}

Netlist tiny_netlist() {
  // pi0 -> INV -> NAND2(a, pi1) -> PO
  Netlist nl(lib(), "tiny");
  const std::size_t pi0 = nl.add_primary_input("pi0");
  const std::size_t pi1 = nl.add_primary_input("pi1");
  const std::size_t inv_out =
      nl.add_gate("u1", lib().index_of("INV_X1"), {pi0});
  const std::size_t nand_out =
      nl.add_gate("u2", lib().index_of("NAND2_X1"), {inv_out, pi1});
  nl.mark_primary_output(nand_out);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.gates().size(), 2u);
  EXPECT_EQ(nl.primary_input_count(), 2u);
  EXPECT_EQ(nl.primary_output_count(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, SinksRecorded) {
  const Netlist nl = tiny_netlist();
  const Net& pi0 = nl.nets()[0];
  ASSERT_EQ(pi0.sinks.size(), 1u);
  EXPECT_EQ(pi0.sinks[0].gate, 0u);
  EXPECT_EQ(pi0.sinks[0].pin_index, 0u);
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Netlist nl = tiny_netlist();
  const auto& topo = nl.topological_order();
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_EQ(topo[0], 0u);  // INV before NAND2
  EXPECT_EQ(topo[1], 1u);
}

TEST(Netlist, GateLevels) {
  const Netlist nl = tiny_netlist();
  const auto levels = nl.gate_levels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
}

TEST(Netlist, FaninCountMustMatchMaster) {
  Netlist nl(lib(), "bad");
  const std::size_t pi0 = nl.add_primary_input("pi0");
  EXPECT_THROW(nl.add_gate("u1", lib().index_of("NAND2_X1"), {pi0}),
               PreconditionError);
}

TEST(Netlist, InputPinsOf) {
  const Netlist nl(lib(), "t");
  EXPECT_EQ(nl.input_pins_of(lib().index_of("NAND3_X1")),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(nl.input_pins_of(lib().index_of("INV_X1")),
            (std::vector<std::string>{"A"}));
}

TEST(Netlist, FrozenAfterTopo) {
  Netlist nl = tiny_netlist();
  (void)nl.topological_order();
  EXPECT_THROW(nl.add_primary_input("late"), PreconditionError);
}

// ---------------------------------------------------------------- ISCAS85

TEST(Iscas85, SpecsArePublishedValues) {
  const auto& specs = iscas85_specs();
  ASSERT_EQ(specs.size(), 10u);
  const auto& c432 = iscas85_spec("C432");
  EXPECT_EQ(c432.primary_inputs, 36u);
  EXPECT_EQ(c432.primary_outputs, 7u);
  EXPECT_EQ(c432.gate_count, 160u);
  const auto& c7552 = iscas85_spec("c7552");  // case-insensitive
  EXPECT_EQ(c7552.gate_count, 3512u);
  EXPECT_THROW(iscas85_spec("C9999"), PreconditionError);
}

TEST(Iscas85, GeneratedCircuitMatchesSpec) {
  for (const char* name : {"C432", "C880", "C1355"}) {
    const auto& spec = iscas85_spec(name);
    const Netlist nl = generate_iscas85_like(spec, lib());
    EXPECT_EQ(nl.gates().size(), spec.gate_count) << name;
    EXPECT_EQ(nl.primary_input_count(), spec.primary_inputs) << name;
    EXPECT_EQ(nl.primary_output_count(), spec.primary_outputs) << name;
    EXPECT_NO_THROW(nl.validate());
  }
}

TEST(Iscas85, Deterministic) {
  const Netlist a = generate_iscas85_like("C432", lib());
  const Netlist b = generate_iscas85_like("C432", lib());
  ASSERT_EQ(a.gates().size(), b.gates().size());
  for (std::size_t i = 0; i < a.gates().size(); ++i) {
    EXPECT_EQ(a.gates()[i].cell_index, b.gates()[i].cell_index);
    EXPECT_EQ(a.gates()[i].fanin_nets, b.gates()[i].fanin_nets);
  }
}

TEST(Iscas85, DifferentBenchmarksDiffer) {
  const Netlist a = generate_iscas85_like("C432", lib());
  const Netlist b = generate_iscas85_like("C499", lib());
  EXPECT_NE(a.gates().size(), b.gates().size());
}

TEST(Iscas85, RealisticDepth) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const auto levels = nl.gate_levels();
  std::size_t depth = 0;
  for (std::size_t l : levels) depth = std::max(depth, l);
  EXPECT_GE(depth, 10u);
  EXPECT_LE(depth, 60u);
}

TEST(Iscas85, UsesDiverseCellMix) {
  const Netlist nl = generate_iscas85_like("C1908", lib());
  std::set<std::size_t> used;
  for (const auto& g : nl.gates()) used.insert(g.cell_index);
  EXPECT_GE(used.size(), 8u);  // nearly all ten masters appear
}

TEST(Iscas85, MostNetsAreConsumed) {
  const Netlist nl = generate_iscas85_like("C1355", lib());
  std::size_t dangling = 0;
  for (const auto& net : nl.nets())
    if (!net.is_primary_input() && net.sinks.empty() &&
        !net.is_primary_output)
      ++dangling;
  EXPECT_LT(static_cast<double>(dangling) /
                static_cast<double>(nl.gates().size()),
            0.25);
}

// Property sweep over every ISCAS85 benchmark: generated circuits honour
// their published interface statistics and are valid DAGs.
class AllBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarks, SpecHonored) {
  const auto& spec = iscas85_spec(GetParam());
  const Netlist nl = generate_iscas85_like(spec, lib());
  EXPECT_EQ(nl.gates().size(), spec.gate_count);
  EXPECT_EQ(nl.primary_input_count(), spec.primary_inputs);
  EXPECT_EQ(nl.primary_output_count(), spec.primary_outputs);
  EXPECT_NO_THROW(nl.validate());
}

INSTANTIATE_TEST_SUITE_P(Iscas, AllBenchmarks,
                         ::testing::Values("C432", "C499", "C880", "C1355",
                                           "C1908", "C2670", "C3540",
                                           "C5315", "C6288", "C7552"));

}  // namespace
}  // namespace sva
