// Tests for the netlist module: netlist invariants, topological ordering,
// and the ISCAS85-like benchmark generator.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "netlist/bench_format.hpp"
#include "netlist/iscas85.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

const CellLibrary& lib() {
  static const CellLibrary library = build_standard_library();
  return library;
}

Netlist tiny_netlist() {
  // pi0 -> INV -> NAND2(a, pi1) -> PO
  Netlist nl(lib(), "tiny");
  const std::size_t pi0 = nl.add_primary_input("pi0");
  const std::size_t pi1 = nl.add_primary_input("pi1");
  const std::size_t inv_out =
      nl.add_gate("u1", lib().index_of("INV_X1"), {pi0});
  const std::size_t nand_out =
      nl.add_gate("u2", lib().index_of("NAND2_X1"), {inv_out, pi1});
  nl.mark_primary_output(nand_out);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.gates().size(), 2u);
  EXPECT_EQ(nl.primary_input_count(), 2u);
  EXPECT_EQ(nl.primary_output_count(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, SinksRecorded) {
  const Netlist nl = tiny_netlist();
  const Net& pi0 = nl.nets()[0];
  ASSERT_EQ(pi0.sinks.size(), 1u);
  EXPECT_EQ(pi0.sinks[0].gate, 0u);
  EXPECT_EQ(pi0.sinks[0].pin_index, 0u);
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Netlist nl = tiny_netlist();
  const auto& topo = nl.topological_order();
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_EQ(topo[0], 0u);  // INV before NAND2
  EXPECT_EQ(topo[1], 1u);
}

TEST(Netlist, GateLevels) {
  const Netlist nl = tiny_netlist();
  const auto levels = nl.gate_levels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
}

TEST(Netlist, FaninCountMustMatchMaster) {
  Netlist nl(lib(), "bad");
  const std::size_t pi0 = nl.add_primary_input("pi0");
  EXPECT_THROW(nl.add_gate("u1", lib().index_of("NAND2_X1"), {pi0}),
               PreconditionError);
}

TEST(Netlist, InputPinsOf) {
  const Netlist nl(lib(), "t");
  EXPECT_EQ(nl.input_pins_of(lib().index_of("NAND3_X1")),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(nl.input_pins_of(lib().index_of("INV_X1")),
            (std::vector<std::string>{"A"}));
}

TEST(Netlist, FrozenAfterTopo) {
  Netlist nl = tiny_netlist();
  (void)nl.topological_order();
  EXPECT_THROW(nl.add_primary_input("late"), PreconditionError);
}

// ---------------------------------------------------------------- ISCAS85

TEST(Iscas85, SpecsArePublishedValues) {
  const auto& specs = iscas85_specs();
  ASSERT_EQ(specs.size(), 10u);
  const auto& c432 = iscas85_spec("C432");
  EXPECT_EQ(c432.primary_inputs, 36u);
  EXPECT_EQ(c432.primary_outputs, 7u);
  EXPECT_EQ(c432.gate_count, 160u);
  const auto& c7552 = iscas85_spec("c7552");  // case-insensitive
  EXPECT_EQ(c7552.gate_count, 3512u);
  EXPECT_THROW(iscas85_spec("C9999"), PreconditionError);
}

TEST(Iscas85, GeneratedCircuitMatchesSpec) {
  for (const char* name : {"C432", "C880", "C1355"}) {
    const auto& spec = iscas85_spec(name);
    const Netlist nl = generate_iscas85_like(spec, lib());
    EXPECT_EQ(nl.gates().size(), spec.gate_count) << name;
    EXPECT_EQ(nl.primary_input_count(), spec.primary_inputs) << name;
    EXPECT_EQ(nl.primary_output_count(), spec.primary_outputs) << name;
    EXPECT_NO_THROW(nl.validate());
  }
}

TEST(Iscas85, Deterministic) {
  const Netlist a = generate_iscas85_like("C432", lib());
  const Netlist b = generate_iscas85_like("C432", lib());
  ASSERT_EQ(a.gates().size(), b.gates().size());
  for (std::size_t i = 0; i < a.gates().size(); ++i) {
    EXPECT_EQ(a.gates()[i].cell_index, b.gates()[i].cell_index);
    EXPECT_EQ(a.gates()[i].fanin_nets, b.gates()[i].fanin_nets);
  }
}

TEST(Iscas85, DifferentBenchmarksDiffer) {
  const Netlist a = generate_iscas85_like("C432", lib());
  const Netlist b = generate_iscas85_like("C499", lib());
  EXPECT_NE(a.gates().size(), b.gates().size());
}

TEST(Iscas85, RealisticDepth) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const auto levels = nl.gate_levels();
  std::size_t depth = 0;
  for (std::size_t l : levels) depth = std::max(depth, l);
  EXPECT_GE(depth, 10u);
  EXPECT_LE(depth, 60u);
}

TEST(Iscas85, UsesDiverseCellMix) {
  const Netlist nl = generate_iscas85_like("C1908", lib());
  std::set<std::size_t> used;
  for (const auto& g : nl.gates()) used.insert(g.cell_index);
  EXPECT_GE(used.size(), 8u);  // nearly all ten masters appear
}

TEST(Iscas85, MostNetsAreConsumed) {
  const Netlist nl = generate_iscas85_like("C1355", lib());
  std::size_t dangling = 0;
  for (const auto& net : nl.nets())
    if (!net.is_primary_input() && net.sinks.empty() &&
        !net.is_primary_output)
      ++dangling;
  EXPECT_LT(static_cast<double>(dangling) /
                static_cast<double>(nl.gates().size()),
            0.25);
}

// Property sweep over every ISCAS85 benchmark: generated circuits honour
// their published interface statistics and are valid DAGs.
class AllBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarks, SpecHonored) {
  const auto& spec = iscas85_spec(GetParam());
  const Netlist nl = generate_iscas85_like(spec, lib());
  EXPECT_EQ(nl.gates().size(), spec.gate_count);
  EXPECT_EQ(nl.primary_input_count(), spec.primary_inputs);
  EXPECT_EQ(nl.primary_output_count(), spec.primary_outputs);
  EXPECT_NO_THROW(nl.validate());
}

INSTANTIATE_TEST_SUITE_P(Iscas, AllBenchmarks,
                         ::testing::Values("C432", "C499", "C880", "C1355",
                                           "C1908", "C2670", "C3540",
                                           "C5315", "C6288", "C7552"));

// ----------------------------------------------- malformed-input corpus
//
// Every reader failure must be a precise sva::Error, never a crash or a
// silently wrong netlist.  Each case asserts the diagnostic substring the
// parser documents, so error messages stay stable contracts.

/// Run `fn`, assert it throws sva::Error whose message contains `expect`.
template <typename Fn>
void expect_parse_error(const std::string& what, const std::string& expect,
                        Fn&& fn) {
  try {
    fn();
    FAIL() << what << ": expected an sva::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
        << what << ": message was '" << e.what() << "'";
  }
}

TEST(BenchCorpus, WellFormedInputStillParses) {
  // Sanity anchor: the corpus failures below are caused by the
  // malformation alone, not by the harness.
  const Netlist nl = load_bench(
      "# c-tiny\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", lib(),
      "tiny");
  EXPECT_GE(nl.gates().size(), 1u);  // mapper may decompose/buffer
  EXPECT_EQ(nl.primary_input_count(), 2u);
  EXPECT_EQ(nl.primary_output_count(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(BenchCorpus, EmptyAndDeclarationlessInputs) {
  expect_parse_error("empty file", "no INPUT declarations",
                     [] { parse_bench(""); });
  expect_parse_error("comments only", "no INPUT declarations",
                     [] { parse_bench("# just a comment\n\n"); });
  expect_parse_error("no outputs", "no OUTPUT declarations",
                     [] { parse_bench("INPUT(a)\n"); });
}

TEST(BenchCorpus, GarbageAndTruncatedLines) {
  expect_parse_error(".bench garbage line", ".bench line 2",
                     [] { parse_bench("INPUT(a)\n%!@ garbage\n"); });
  expect_parse_error("truncated gate", "expected 'out = OP(in, ...)'", [] {
    parse_bench("INPUT(a)\nOUTPUT(g)\ng = AND(a\n");
  });
  expect_parse_error("empty operand", "empty operand", [] {
    parse_bench("INPUT(a)\nOUTPUT(g)\ng = AND(a, )\n");
  });
  expect_parse_error("empty signal name", "empty signal name",
                     [] { parse_bench("INPUT()\n"); });
  expect_parse_error("unknown declaration", "unknown declaration",
                     [] { parse_bench("SIGNAL(a)\n"); });
}

TEST(BenchCorpus, SemanticViolations) {
  expect_parse_error("duplicate driver", "signal 'g' driven twice", [] {
    parse_bench(
        "INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\ng = OR(a, b)\n");
  });
  expect_parse_error("duplicate input", "duplicate INPUT 'a'",
                     [] { parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"); });
  expect_parse_error("combinational cycle", "combinational cycle through", [] {
    parse_bench(
        "INPUT(a)\nOUTPUT(y)\n"
        "b = AND(a, c)\nc = AND(a, b)\ny = AND(b, c)\n");
  });
  expect_parse_error("unknown gate type", "unknown gate type 'MAJ'", [] {
    parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = MAJ(a, b)\n");
  });
  expect_parse_error("sequential element", "sequential element", [] {
    parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n");
  });
  expect_parse_error("undefined signal", "undefined signal 'phantom'", [] {
    parse_bench("INPUT(a)\nOUTPUT(g)\ng = AND(a, phantom)\n");
  });
  expect_parse_error("NOT arity", "NOT takes exactly one input", [] {
    parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = NOT(a, b)\n");
  });
}

TEST(VerilogCorpus, WellFormedInputStillParses) {
  const Netlist nl = parse_verilog(
      "module tiny (a, b, y);\n"
      "  input a, b;\n  output y;\n"
      "  NAND2_X1 u1 (.A(a), .B(b), .Y(y));\n"
      "endmodule\n",
      lib());
  EXPECT_EQ(nl.gates().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(VerilogCorpus, EmptyGarbageAndTruncatedSources) {
  EXPECT_THROW(parse_verilog("", lib()), PreconditionError);
  EXPECT_THROW(parse_verilog("// only a comment\n", lib()),
               PreconditionError);
  expect_parse_error("garbage prelude", "expected 'module'",
                     [] { parse_verilog("entity tiny is\n", lib()); });
  expect_parse_error("truncated module", "unexpected end of file",
                     [] { parse_verilog("module m (a);\ninput a;\n", lib()); });
  expect_parse_error("truncated instance", "unexpected end of file", [] {
    parse_verilog("module m (y);\noutput y;\nINV_X1 u1 (.A(", lib());
  });
}

TEST(VerilogCorpus, SemanticViolations) {
  expect_parse_error("duplicate input", "duplicate input 'a'", [] {
    parse_verilog(
        "module m (a, y);\ninput a, a;\noutput y;\n"
        "INV_X1 u1 (.A(a), .Y(y));\nendmodule\n",
        lib());
  });
  expect_parse_error("driven twice", "net 'y' driven twice", [] {
    parse_verilog(
        "module m (a, y);\ninput a;\noutput y;\n"
        "INV_X1 u1 (.A(a), .Y(y));\nINV_X1 u2 (.A(a), .Y(y));\nendmodule\n",
        lib());
  });
  expect_parse_error("combinational cycle", "combinational cycle through", [] {
    parse_verilog(
        "module m (a, y);\ninput a;\noutput y;\nwire w1, w2;\n"
        "INV_X1 u1 (.A(w2), .Y(w1));\n"
        "INV_X1 u2 (.A(w1), .Y(w2));\n"
        "INV_X1 u3 (.A(w1), .Y(y));\nendmodule\n",
        lib());
  });
  expect_parse_error("undriven net", "undriven net 'ghost'", [] {
    parse_verilog(
        "module m (y);\noutput y;\n"
        "INV_X1 u1 (.A(ghost), .Y(y));\nendmodule\n",
        lib());
  });
  expect_parse_error("no outputs", "module declares no outputs", [] {
    parse_verilog("module m (a);\ninput a;\nendmodule\n", lib());
  });
  expect_parse_error("missing .Y", "instance without .Y connection", [] {
    parse_verilog(
        "module m (a, y);\ninput a;\noutput y;\n"
        "INV_X1 u1 (.A(a));\nendmodule\n",
        lib());
  });
  expect_parse_error("unknown pin", "has no input pin Q", [] {
    parse_verilog(
        "module m (a, y);\ninput a;\noutput y;\n"
        "INV_X1 u1 (.Q(a), .Y(y));\nendmodule\n",
        lib());
  });
  expect_parse_error("unconnected pin", "leaves pin B unconnected", [] {
    parse_verilog(
        "module m (a, y);\ninput a;\noutput y;\n"
        "NAND2_X1 u1 (.A(a), .Y(y));\nendmodule\n",
        lib());
  });
}

}  // namespace
}  // namespace sva
