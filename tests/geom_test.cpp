// Tests for the geom module: rectangles, layouts, spacing queries.

#include <gtest/gtest.h>

#include "geom/layout.hpp"
#include "geom/rect.hpp"
#include "geom/spacing.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

// ---------------------------------------------------------------- Rect

TEST(Rect, MakeValidates) {
  EXPECT_NO_THROW(Rect::make(0, 0, 1, 1));
  EXPECT_NO_THROW(Rect::make(0, 0, 0, 0));  // degenerate allowed
  EXPECT_THROW(Rect::make(1, 0, 0, 1), PreconditionError);
  EXPECT_THROW(Rect::make(0, 1, 1, 0), PreconditionError);
}

TEST(Rect, Dimensions) {
  const Rect r = Rect::make(1, 2, 4, 8);
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 18.0);
  EXPECT_DOUBLE_EQ(r.x_center(), 2.5);
  EXPECT_DOUBLE_EQ(r.y_center(), 5.0);
}

TEST(Rect, Translated) {
  const Rect r = Rect::make(0, 0, 1, 1).translated(10, -5);
  EXPECT_DOUBLE_EQ(r.x_lo, 10.0);
  EXPECT_DOUBLE_EQ(r.y_hi, -4.0);
}

TEST(Rect, OverlapSemantics) {
  const Rect a = Rect::make(0, 0, 10, 10);
  EXPECT_TRUE(a.y_overlaps(Rect::make(20, 5, 30, 15)));
  // Touching edges do not count as overlap.
  EXPECT_FALSE(a.y_overlaps(Rect::make(20, 10, 30, 20)));
  EXPECT_TRUE(a.intersects(Rect::make(5, 5, 15, 15)));
  EXPECT_FALSE(a.intersects(Rect::make(10, 0, 20, 10)));
}

TEST(Rect, Contains) {
  const Rect r = Rect::make(0, 0, 2, 2);
  EXPECT_TRUE(r.contains(1, 1));
  EXPECT_TRUE(r.contains(0, 0));  // boundary inclusive
  EXPECT_FALSE(r.contains(3, 1));
}

TEST(Rect, United) {
  const Rect u = Rect::make(0, 0, 1, 1).united(Rect::make(5, -2, 6, 0.5));
  EXPECT_EQ(u, Rect::make(0, -2, 6, 1));
}

// ---------------------------------------------------------------- Layout

TEST(Layout, AddAndQueryByLayer) {
  Layout l;
  l.add(Layer::Poly, Rect::make(0, 0, 1, 10));
  l.add(Layer::Diffusion, Rect::make(-1, 2, 2, 5));
  l.add(Layer::DummyPoly, Rect::make(3, 0, 4, 10));
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.on_layer(Layer::Poly).size(), 1u);
  EXPECT_EQ(l.on_layer(Layer::Diffusion).size(), 1u);
  EXPECT_EQ(l.printable_poly().size(), 2u);  // poly + dummy
}

TEST(Layout, MergeTranslated) {
  Layout a;
  a.add(Layer::Poly, Rect::make(0, 0, 1, 1));
  Layout b;
  b.add(Layer::Poly, Rect::make(0, 0, 1, 1));
  b.merge_translated(a, 10, 20);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.shapes()[1].rect, Rect::make(10, 20, 11, 21));
}

TEST(Layout, BoundingBox) {
  Layout l;
  l.add(Layer::Poly, Rect::make(0, 0, 1, 1));
  l.add(Layer::Poly, Rect::make(5, -3, 6, 8));
  EXPECT_EQ(l.bounding_box(), Rect::make(0, -3, 6, 8));
}

TEST(Layout, BoundingBoxOfEmptyThrows) {
  Layout l;
  EXPECT_THROW(l.bounding_box(), PreconditionError);
}

TEST(Layout, LayerNames) {
  EXPECT_EQ(layer_name(Layer::Poly), "POLY");
  EXPECT_EQ(layer_name(Layer::Diffusion), "DIFF");
  EXPECT_EQ(layer_name(Layer::DummyPoly), "DUMMY");
}

// ------------------------------------------------------------ SpacingIndex

std::vector<Rect> three_lines() {
  // Lines at x = [0,90], [290,380], [800,890]; all y = [0,1000].
  return {Rect::make(0, 0, 90, 1000), Rect::make(290, 0, 380, 1000),
          Rect::make(800, 0, 890, 1000)};
}

TEST(SpacingIndex, NearestLeftAndRight) {
  const SpacingIndex idx(three_lines());
  const Rect center = Rect::make(290, 0, 380, 1000);
  const auto left = idx.nearest_left(center, 1000.0);
  ASSERT_TRUE(left.has_value());
  EXPECT_DOUBLE_EQ(left->spacing, 200.0);
  EXPECT_DOUBLE_EQ(left->width, 90.0);
  const auto right = idx.nearest_right(center, 1000.0);
  ASSERT_TRUE(right.has_value());
  EXPECT_DOUBLE_EQ(right->spacing, 420.0);
}

TEST(SpacingIndex, RespectsMaxDistance) {
  const SpacingIndex idx(three_lines());
  const Rect center = Rect::make(290, 0, 380, 1000);
  EXPECT_FALSE(idx.nearest_right(center, 100.0).has_value());
  EXPECT_TRUE(idx.nearest_right(center, 420.0).has_value());
}

TEST(SpacingIndex, IgnoresVerticallyDisjointFeatures) {
  std::vector<Rect> rects = {Rect::make(0, 0, 90, 100),
                             Rect::make(290, 500, 380, 900)};
  const SpacingIndex idx(rects);
  // The two rects do not overlap in y, so neither sees the other.
  EXPECT_FALSE(
      idx.nearest_left(Rect::make(290, 500, 380, 900), 1000).has_value());
}

TEST(SpacingIndex, SkipsSelf) {
  const SpacingIndex idx(three_lines());
  const Rect self = Rect::make(0, 0, 90, 1000);
  const auto left = idx.nearest_left(self, 1000.0);
  EXPECT_FALSE(left.has_value());  // nothing left of the first line
  const auto right = idx.nearest_right(self, 1000.0);
  ASSERT_TRUE(right.has_value());
  EXPECT_DOUBLE_EQ(right->spacing, 200.0);
}

TEST(SpacingIndex, NeighborsSortedNearestFirst) {
  const SpacingIndex idx(three_lines());
  const Rect right_line = Rect::make(800, 0, 890, 1000);
  const auto all = idx.neighbors_left(right_line, 10000.0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].spacing, 420.0);
  EXPECT_DOUBLE_EQ(all[1].spacing, 710.0);
}

TEST(SpacingIndex, PartialYOverlapCounts) {
  std::vector<Rect> rects = {Rect::make(0, 0, 90, 600),
                             Rect::make(290, 500, 380, 1000)};
  const SpacingIndex idx(rects);
  const auto left =
      idx.nearest_left(Rect::make(290, 500, 380, 1000), 1000.0);
  ASSERT_TRUE(left.has_value());
  EXPECT_DOUBLE_EQ(left->spacing, 200.0);
}

// Property: for a uniform array of lines at pitch p, every interior line's
// nearest neighbours on both sides are at spacing p - width.
class UniformArraySpacing : public ::testing::TestWithParam<double> {};

TEST_P(UniformArraySpacing, InteriorSpacingIsPitchMinusWidth) {
  const double pitch = GetParam();
  const double width = 90.0;
  std::vector<Rect> rects;
  for (int i = 0; i < 7; ++i)
    rects.push_back(
        Rect::make(i * pitch, 0.0, i * pitch + width, 1000.0));
  const SpacingIndex idx(rects);
  for (int i = 1; i < 6; ++i) {
    const auto l = idx.nearest_left(rects[static_cast<std::size_t>(i)], 1e6);
    const auto r = idx.nearest_right(rects[static_cast<std::size_t>(i)], 1e6);
    ASSERT_TRUE(l.has_value());
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(l->spacing, pitch - width);
    EXPECT_DOUBLE_EQ(r->spacing, pitch - width);
  }
}

INSTANTIATE_TEST_SUITE_P(PitchSweep, UniformArraySpacing,
                         ::testing::Values(240.0, 300.0, 340.0, 500.0,
                                           777.5));

}  // namespace
}  // namespace sva
