// Tests for the fourth extension wave: budget calibration from
// measurements, Liberty round-trip, and Verilog round-trip.

#include <gtest/gtest.h>

#include "cell/liberty_reader.hpp"
#include "cell/liberty_writer.hpp"
#include "core/budget_calibration.hpp"
#include "core/flow.hpp"
#include "netlist/verilog.hpp"

namespace sva {
namespace {

const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

// ----------------------------------------------------- Budget calibration

TEST(BudgetCalibration, MeasuresPositiveHalfRanges) {
  const PrintModel model(flow().wafer_process(), FocusResponseParams{},
                         600.0);
  const MeasuredBudget m =
      measure_budget(flow().opc_engine(), model, 90.0);
  EXPECT_GT(m.lvar_pitch, 0.5);
  EXPECT_LT(m.lvar_pitch, 9.0);
  EXPECT_GT(m.lvar_focus, 0.5);
  EXPECT_LT(m.lvar_focus, 9.0);
}

TEST(BudgetCalibration, ToBudgetSharesMatchMeasurement) {
  MeasuredBudget m;
  m.lvar_pitch = 2.7;
  m.lvar_focus = 1.8;
  const CdBudget b = m.to_budget(90.0, 0.10);
  EXPECT_NEAR(b.pitch_share, 2.7 / 9.0, 1e-12);
  EXPECT_NEAR(b.focus_share, 1.8 / 9.0, 1e-12);
  EXPECT_NO_THROW(b.validate());
}

TEST(BudgetCalibration, OverfullMeasurementIsScaledDown) {
  MeasuredBudget m;
  m.lvar_pitch = 8.0;
  m.lvar_focus = 8.0;
  const CdBudget b = m.to_budget(90.0, 0.10);
  EXPECT_NEAR(b.pitch_share + b.focus_share, 1.0, 1e-9);
  EXPECT_NO_THROW(b.validate());
}

TEST(BudgetCalibration, MeasuredBudgetDrivesFlow) {
  const PrintModel model(flow().wafer_process(), FocusResponseParams{},
                         600.0);
  const MeasuredBudget m =
      measure_budget(flow().opc_engine(), model, 90.0);
  FlowConfig config;
  config.budget = m.to_budget(90.0);
  const SvaFlow measured_flow{config};
  const CircuitAnalysis a = measured_flow.analyze_benchmark("C432");
  // The measured shares exceed the paper's assumed 30%+30% (our focus
  // response and residual pitch bias are both strong), so the reduction
  // lands above the assumed-budget band.
  EXPECT_GT(a.uncertainty_reduction(), 0.05);
  EXPECT_LT(a.uncertainty_reduction(), 0.80);
}

// ------------------------------------------------------- Liberty roundtrip

TEST(LibertyRoundtrip, BaseLibraryParsesBack) {
  const std::string text = to_liberty(flow().characterized(), "sva90");
  const ParsedLiberty parsed = parse_liberty(text);
  EXPECT_EQ(parsed.name, "sva90");
  EXPECT_EQ(parsed.cells.size(), 10u);
  EXPECT_EQ(parsed.slew_axis, default_slew_axis());
  EXPECT_EQ(parsed.load_axis, default_load_axis());
}

TEST(LibertyRoundtrip, TablesSurviveRoundtrip) {
  const std::string text = to_liberty(flow().characterized(), "sva90");
  const ParsedLiberty parsed = parse_liberty(text);
  const auto& nand2 =
      flow().characterized().cells[flow().library().index_of("NAND2_X1")];
  const auto& parsed_cell = parsed.cell("NAND2_X1");
  ASSERT_EQ(parsed_cell.timings.size(), nand2.arcs.size());
  // Compare a few table entries (the writer rounds to 4 decimals).
  const auto& original = nand2.arcs[0].nldm.delay_table();
  const auto& round_tripped = parsed_cell.timings[0].cell_rise;
  for (std::size_t i = 0; i < original.nx(); i += 2)
    for (std::size_t j = 0; j < original.ny(); j += 3)
      EXPECT_NEAR(round_tripped.value_at(i, j), original.value_at(i, j),
                  1e-3);
}

TEST(LibertyRoundtrip, PinCapsSurvive) {
  const std::string text = to_liberty(flow().characterized(), "sva90");
  const ParsedLiberty parsed = parse_liberty(text);
  const double original = flow()
                              .characterized()
                              .cells[flow().library().index_of("INV_X1")]
                              .master.pin("A")
                              .input_cap_ff;
  EXPECT_NEAR(parsed.cell("INV_X1").pin("A").capacitance_ff, original,
              1e-3);
  EXPECT_FALSE(parsed.cell("INV_X1").pin("A").is_output);
  EXPECT_TRUE(parsed.cell("INV_X1").pin("Y").is_output);
}

TEST(LibertyRoundtrip, ExpandedVersionScalesSurvive) {
  const std::string text = to_liberty_expanded(
      flow().characterized(), flow().context_library(), "ctx");
  const ParsedLiberty parsed = parse_liberty(text);
  const std::size_t inv = flow().library().index_of("INV_X1");
  const VersionKey key{2, 2, 2, 2};
  const double scale =
      flow().context_library().arc_delay_scale(inv, key, 0);
  const auto& base =
      flow().characterized().cells[inv].arcs[0].nldm.delay_table();
  const auto& cell = parsed.cell("INV_X1" + version_suffix(key));
  EXPECT_NEAR(cell.timings[0].cell_rise.value_at(0, 0),
              base.value_at(0, 0) * scale, 1e-3);
}

TEST(LibertyRoundtrip, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_liberty("not liberty at all"), Error);
  EXPECT_THROW(parse_liberty("library (x) { cell (A) { } }"), Error);
}

// ------------------------------------------------------- Verilog roundtrip

TEST(VerilogRoundtrip, BenchmarkSurvives) {
  const Netlist original = flow().make_benchmark("C432");
  const std::string text = to_verilog(original);
  const Netlist parsed = parse_verilog(text, flow().library());
  parsed.validate();
  EXPECT_EQ(parsed.gates().size(), original.gates().size());
  EXPECT_EQ(parsed.primary_input_count(), original.primary_input_count());
  EXPECT_EQ(parsed.primary_output_count(),
            original.primary_output_count());
  // Cell-type histogram must survive exactly.
  std::vector<std::size_t> hist_a(10, 0), hist_b(10, 0);
  for (const auto& g : original.gates()) ++hist_a[g.cell_index];
  for (const auto& g : parsed.gates()) ++hist_b[g.cell_index];
  EXPECT_EQ(hist_a, hist_b);
}

TEST(VerilogRoundtrip, TimingInvariantUnderRoundtrip) {
  const Netlist original = flow().make_benchmark("C880");
  const Netlist parsed =
      parse_verilog(to_verilog(original), flow().library());
  const Sta sta_a(original, flow().characterized(), flow().config().sta);
  const Sta sta_b(parsed, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  EXPECT_NEAR(sta_a.run(scale).critical_delay_ps,
              sta_b.run(scale).critical_delay_ps, 1e-6);
}

TEST(VerilogRoundtrip, EmitsDeclarations) {
  const Netlist nl = flow().make_benchmark("C432");
  const std::string text = to_verilog(nl);
  EXPECT_NE(text.find("module C432"), std::string::npos);
  EXPECT_NE(text.find("input pi0;"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_NE(text.find("NAND2_X1"), std::string::npos);
}

TEST(VerilogRoundtrip, ParserRejectsBadInput) {
  EXPECT_THROW(parse_verilog("module m (a); endmodule",
                             flow().library()),
               Error);  // no declarations -> no outputs
  EXPECT_THROW(
      parse_verilog("module m (a, y); input a; output y; "
                    "MYSTERY_CELL u0 (.A(a), .Y(y)); endmodule",
                    flow().library()),
      Error);  // unknown cell
  EXPECT_THROW(
      parse_verilog("module m (a, y); input a; output y; "
                    "INV_X1 u0 (.A(a)); endmodule",
                    flow().library()),
      Error);  // no .Y
}

TEST(VerilogRoundtrip, RejectsDoubleDriver) {
  const char* text =
      "module m (a, y); input a; output y; wire w;\n"
      "INV_X1 u0 (.A(a), .Y(y));\n"
      "INV_X1 u1 (.A(a), .Y(y));\n"
      "endmodule\n";
  EXPECT_THROW(parse_verilog(text, flow().library()), Error);
}

TEST(VerilogRoundtrip, HandlesOutOfOrderInstances) {
  const char* text =
      "module m (a, y); input a; output y; wire w;\n"
      "INV_X1 u1 (.A(w), .Y(y));\n"
      "INV_X1 u0 (.A(a), .Y(w));\n"
      "endmodule\n";
  const Netlist nl = parse_verilog(text, flow().library());
  EXPECT_EQ(nl.gates().size(), 2u);
  // u0 must come before u1 in the rebuilt netlist.
  EXPECT_EQ(nl.gates()[0].name, "u0");
}

}  // namespace
}  // namespace sva
