// Tests for the util module: RNG determinism and distributions,
// interpolation tables, statistics, strings.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/interp.hpp"
#include "util/rng.hpp"
#include "util/metrics.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace sva {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, StringSeedIsStable) {
  Rng a("C432"), b("C432"), c("C880");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2("C432");
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsAreCorrect) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(37);
  std::vector<double> none;
  EXPECT_THROW(rng.weighted_index(none), PreconditionError);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), PreconditionError);
  std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

// ---------------------------------------------------------------- Interp

TEST(LookupTable1D, ExactAtKnots) {
  LookupTable1D t({0.0, 1.0, 3.0}, {10.0, 20.0, 0.0});
  EXPECT_DOUBLE_EQ(t.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.at(1.0), 20.0);
  EXPECT_DOUBLE_EQ(t.at(3.0), 0.0);
}

TEST(LookupTable1D, LinearBetweenKnots) {
  LookupTable1D t({0.0, 2.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(t.at(0.5), 2.5);
  EXPECT_DOUBLE_EQ(t.at(1.0), 5.0);
}

TEST(LookupTable1D, ExtrapolatesLinearly) {
  LookupTable1D t({0.0, 1.0, 2.0}, {0.0, 1.0, 4.0});
  EXPECT_DOUBLE_EQ(t.at(-1.0), -1.0);  // first segment slope 1
  EXPECT_DOUBLE_EQ(t.at(3.0), 7.0);    // last segment slope 3
}

TEST(LookupTable1D, SlopeAt) {
  LookupTable1D t({0.0, 1.0, 3.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(t.slope_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(t.slope_at(2.0), 0.0);
}

TEST(LookupTable1D, RejectsNonIncreasingAxis) {
  EXPECT_THROW(LookupTable1D({1.0, 1.0}, {0.0, 0.0}), PreconditionError);
  EXPECT_THROW(LookupTable1D({2.0, 1.0}, {0.0, 0.0}), PreconditionError);
  EXPECT_THROW(LookupTable1D({1.0}, {0.0, 0.0}), PreconditionError);
}

TEST(LookupTable1D, MinMaxValues) {
  LookupTable1D t({0.0, 1.0, 2.0}, {3.0, -1.0, 5.0});
  EXPECT_DOUBLE_EQ(t.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(t.max_value(), 5.0);
}

TEST(LookupTable2D, BilinearInterior) {
  // z = x + 10*y on the grid => exact everywhere under bilinear.
  LookupTable2D t({0.0, 1.0}, {0.0, 1.0}, {0.0, 10.0, 1.0, 11.0});
  EXPECT_DOUBLE_EQ(t.at(0.5, 0.5), 5.5);
  EXPECT_DOUBLE_EQ(t.at(0.25, 0.75), 7.75);
}

TEST(LookupTable2D, EdgeExtrapolation) {
  LookupTable2D t({0.0, 1.0}, {0.0, 1.0}, {0.0, 10.0, 1.0, 11.0});
  EXPECT_DOUBLE_EQ(t.at(2.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(0.0, 2.0), 20.0);
}

TEST(LookupTable2D, TransformedScalesValues) {
  LookupTable2D t({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
  const auto doubled = t.transformed([](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(doubled.at(0.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(doubled.at(1.0, 1.0), 8.0);
}

TEST(LookupTable2D, RejectsSizeMismatch) {
  EXPECT_THROW(LookupTable2D({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0}),
               PreconditionError);
}

TEST(Interp, SegmentIndexClamps) {
  const std::vector<double> axis = {0.0, 1.0, 2.0};
  EXPECT_EQ(interp::segment_index(axis, -5.0), 0u);
  EXPECT_EQ(interp::segment_index(axis, 0.5), 0u);
  EXPECT_EQ(interp::segment_index(axis, 1.5), 1u);
  EXPECT_EQ(interp::segment_index(axis, 99.0), 1u);
}

// ---------------------------------------------------------------- Stats

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, SummaryRejectsEmpty) {
  EXPECT_THROW(summarize({}), PreconditionError);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);  // unsorted in
}

TEST(Stats, FractionWithin) {
  const std::vector<double> xs = {-3.0, -1.0, 0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(fraction_within(xs, 1.0), 0.6);
  EXPECT_DOUBLE_EQ(fraction_within(xs, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_within(xs, 0.0), 0.2);
}

TEST(Stats, HistogramBinsAndOverflow) {
  const Histogram h =
      make_histogram({-1.0, 0.5, 1.5, 2.5, 9.0, 10.0}, 0.0, 10.0, 10);
  EXPECT_EQ(h.counts.size(), 10u);
  EXPECT_EQ(h.underflow, 1u);
  EXPECT_EQ(h.overflow, 1u);  // 10.0 is at the top edge
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[9], 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Stats, HistogramBinCenter) {
  const Histogram h = make_histogram({0.5}, 0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 0.75);
}

// ---------------------------------------------------------------- Strings

TEST(Strings, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-1.0, 0), "-1");
  EXPECT_EQ(fmt(2.5, 3), "2.500");
}

TEST(Strings, FmtPct) {
  EXPECT_EQ(fmt_pct(0.2834, 1), "28.3%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("C432", "C"));
  EXPECT_FALSE(starts_with("C", "C432"));
}

// ---------------------------------------------------------------- Units

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::ps_to_ns(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(units::nm_to_um(250.0), 0.25);
}

// ---------------------------------------------------------- Serialize

TEST(Serialize, GoldenLittleEndianBytes) {
  // The on-disk byte order is little-endian regardless of host, so these
  // exact byte sequences must hold on every platform.
  ByteWriter w;
  w.u8(0xab);
  w.u32(0x11223344u);
  w.u64(0x0102030405060708ull);
  w.f64(1.0);  // IEEE-754: 0x3ff0000000000000
  const std::string expected =
      std::string("\xab", 1) + std::string("\x44\x33\x22\x11", 4) +
      std::string("\x08\x07\x06\x05\x04\x03\x02\x01", 8) +
      std::string("\x00\x00\x00\x00\x00\x00\xf0\x3f", 8);
  EXPECT_EQ(w.bytes(), expected);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0x11223344u);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.f64(), 1.0);
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, Fnv1aKnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Serialize, WordHashDetectsAnyByteFlip) {
  std::string data(100, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = char(i * 37);
  const std::uint64_t base = fnv1a64_words(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(fnv1a64_words(mutated.data(), mutated.size()), base)
        << "flip at byte " << i << " not detected";
  }
  // The zero-padded tail must not collide with explicit trailing zeros.
  const std::string longer = data + std::string(3, '\0');
  EXPECT_NE(fnv1a64_words(longer.data(), longer.size()), base);
}

TEST(Serialize, HasherIsOrderSensitive) {
  Fnv1aHasher a, b;
  a.u64(1).u64(2);
  b.u64(2).u64(1);
  EXPECT_NE(a.digest(), b.digest());
  Fnv1aHasher c, d;
  c.str("ab").str("c");
  d.str("a").str("bc");
  EXPECT_NE(c.digest(), d.digest());  // length prefixes disambiguate
}

TEST(Serialize, RoundTripsStringsAndVectors) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.vec_f64({1.5, -2.25, 0.0});
  w.vec_f64({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(r.vec_f64(), std::vector<double>{});
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serialize, ReaderRejectsTruncation) {
  ByteWriter w;
  w.u64(42);
  for (std::size_t keep = 0; keep < 8; ++keep) {
    ByteReader r(std::string_view(w.bytes()).substr(0, keep));
    EXPECT_THROW(r.u64(), SerializeError) << "kept " << keep << " bytes";
  }
}

TEST(Serialize, ReaderRejectsCorruptCountsWithoutAllocating) {
  // A huge length prefix must throw before any allocation is attempted.
  ByteWriter w;
  w.u64(~0ull);
  {
    ByteReader r(w.bytes());
    EXPECT_THROW(r.vec_f64(), SerializeError);
  }
  {
    ByteReader r(w.bytes());
    EXPECT_THROW(r.str(), SerializeError);
  }
}

TEST(Serialize, ReaderRejectsTrailingBytes) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.expect_end(), SerializeError);
}

TEST(Serialize, LookupTable1dRoundTrip) {
  const LookupTable1D t({0.0, 1.0, 2.5}, {10.0, 20.0, 15.0});
  ByteWriter w;
  serialize(w, t);
  ByteReader r(w.bytes());
  const LookupTable1D back = deserialize_lut1d(r);
  EXPECT_EQ(back.axis(), t.axis());
  EXPECT_EQ(back.values(), t.values());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, LookupTable2dRoundTrip) {
  const LookupTable2D t({1.0, 2.0}, {0.0, 5.0, 9.0},
                        {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  ByteWriter w;
  serialize(w, t);
  ByteReader r(w.bytes());
  const LookupTable2D back = deserialize_lut2d(r);
  EXPECT_EQ(back.x_axis(), t.x_axis());
  EXPECT_EQ(back.y_axis(), t.y_axis());
  EXPECT_EQ(back.values(), t.values());
}

TEST(Serialize, TableDecodersRevalidateInvariants) {
  {
    // Non-increasing axis.
    ByteWriter w;
    w.vec_f64({0.0, 0.0, 1.0});
    w.vec_f64({1.0, 2.0, 3.0});
    ByteReader r(w.bytes());
    EXPECT_THROW(deserialize_lut1d(r), SerializeError);
  }
  {
    // Value count does not match the axes.
    ByteWriter w;
    w.vec_f64({1.0, 2.0});
    w.vec_f64({1.0, 2.0});
    w.vec_f64({1.0, 2.0, 3.0});
    ByteReader r(w.bytes());
    EXPECT_THROW(deserialize_lut2d(r), SerializeError);
  }
}

// Property sweep: 1-D interpolation is monotone between knots for
// monotone data.
class MonotoneInterp : public ::testing::TestWithParam<double> {};

TEST_P(MonotoneInterp, PreservesMonotonicity) {
  LookupTable1D t({0.0, 1.0, 2.0, 4.0}, {0.0, 1.0, 3.0, 10.0});
  const double x = GetParam();
  EXPECT_LE(t.at(x), t.at(x + 0.25));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonotoneInterp,
                         ::testing::Values(0.0, 0.3, 0.9, 1.4, 2.0, 2.9,
                                           3.6));

// ------------------------------------------------------------- metrics

TEST(Metrics, LogHistogramBucketsArePowersOfTwo) {
  // Bucket 0 is the zero bucket; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(LogHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_of(7), 3u);
  EXPECT_EQ(LogHistogram::bucket_of(8), 4u);
  // The last bucket absorbs everything at or above its floor.
  EXPECT_EQ(LogHistogram::bucket_of(~0ull), LogHistogram::kBuckets - 1);

  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    // Every bucket floor maps back into its own bucket, and the value
    // just below it into the previous one.
    EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_floor(i)), i);
    if (i >= 2) {
      EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_floor(i) - 1),
                i - 1);
    }
  }

  LogHistogram h;
  h.add(0);
  h.add(5);
  h.add(5);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(LogHistogram::bucket_of(5)), 2u);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(Metrics, RenderJsonHasStableKeyOrder) {
  // Scrapers diff daemon snapshots, so the JSON layout is a contract:
  // three alphabetical sections, names sorted within each.  Register in
  // deliberately shuffled order and assert the output ignores it.
  MetricsRegistry reg;
  reg.counter("zeta").add(3);
  reg.counter("alpha").add(1);
  reg.timer("t.late").add_seconds(0.25);
  reg.histogram("wait").add(4);
  reg.histogram("run").add(0);
  reg.timer("t.early").add_seconds(0.5);

  const std::string json = reg.render_json();
  const std::size_t counters = json.find("\"counters\"");
  const std::size_t histograms = json.find("\"histograms\"");
  const std::size_t timers = json.find("\"timers\"");
  ASSERT_NE(counters, std::string::npos);
  ASSERT_NE(histograms, std::string::npos);
  ASSERT_NE(timers, std::string::npos);
  EXPECT_LT(counters, histograms);
  EXPECT_LT(histograms, timers);

  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_LT(json.find("\"run\""), json.find("\"wait\""));
  EXPECT_LT(json.find("\"t.early\""), json.find("\"t.late\""));

  // Two renders of the same registry are byte-identical.
  EXPECT_EQ(reg.render_json(), json);
  EXPECT_NE(json.find("\"alpha\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total\":1"), std::string::npos);

  // A gauge-style counter (add on open, sub on close -- the daemon's
  // server.conn.active) renders its net value.
  reg.counter("gauge").add(5);
  reg.counter("gauge").sub(2);
  EXPECT_EQ(reg.counter("gauge").value(), 3u);
  EXPECT_NE(reg.render_json().find("\"gauge\":3"), std::string::npos);
}

}  // namespace
}  // namespace sva
