// Tests for the block-based SSTA engine: canonical-form algebra, the
// Clark moment-matched max against brute-force two-Gaussian Monte-Carlo,
// full-circuit agreement with the context-aware MC oracle, levelized-
// parallel determinism, criticality conservation, and the fault /
// diagnostics surface of the ssta job.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/flow.hpp"
#include "core/statistical.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "server/jobs.hpp"
#include "ssta/canonical.hpp"
#include "ssta/criticality.hpp"
#include "ssta/propagate.hpp"
#include "sta/sta.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sva {
namespace {

/// Flow construction runs library OPC; share one instance across tests.
const SvaFlow& flow() {
  static const SvaFlow* f = new SvaFlow(FlowConfig{});
  return *f;
}

SstaVariationModel default_model() {
  SstaVariationModel model;
  model.budget = flow().config().budget;
  model.policy = flow().config().arc_policy;
  return model;
}

// ------------------------------------------------------------- canonical

TEST(Canonical, SumIsExact) {
  const CanonicalDelay a{10.0, 2.0, 1.0, 3.0};
  const CanonicalDelay b{5.0, -1.0, 2.0, 4.0};
  const CanonicalDelay s = canonical_sum(a, b);
  EXPECT_DOUBLE_EQ(s.mean_ps, 15.0);
  EXPECT_DOUBLE_EQ(s.a_focus_ps, 1.0);
  EXPECT_DOUBLE_EQ(s.a_global_ps, 3.0);
  // Independent locals add in quadrature.
  EXPECT_DOUBLE_EQ(s.local_ps, 5.0);
}

TEST(Canonical, ScaleIsLinear) {
  const CanonicalDelay d{10.0, 2.0, 1.0, 3.0};
  const CanonicalDelay s = canonical_scale(d, 2.5);
  EXPECT_DOUBLE_EQ(s.mean_ps, 25.0);
  EXPECT_DOUBLE_EQ(s.a_focus_ps, 5.0);
  EXPECT_DOUBLE_EQ(s.a_global_ps, 2.5);
  EXPECT_DOUBLE_EQ(s.local_ps, 7.5);
  EXPECT_DOUBLE_EQ(s.variance_ps2(), 6.25 * d.variance_ps2());
}

TEST(Canonical, CovarianceUsesSharedTermsOnly) {
  const CanonicalDelay a{0.0, 2.0, 3.0, 100.0};
  const CanonicalDelay b{0.0, 4.0, -1.0, 100.0};
  EXPECT_DOUBLE_EQ(canonical_covariance_ps2(a, b), 2.0 * 4.0 - 3.0);
}

TEST(Canonical, NormalQuantileInvertsCdf) {
  for (const double p : {0.001, 0.1, 0.5, 0.9, 0.999, 0.9999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(normal_quantile(0.5), 0.0);
}

TEST(Canonical, ClarkMaxMatchesBruteForceMonteCarlo) {
  // Two correlated canonical forms; the correlation comes only from the
  // shared focus/global variables, exactly as in propagation.
  const CanonicalDelay a{100.0, 6.0, 2.0, 5.0};
  const CanonicalDelay b{102.0, -3.0, 4.0, 8.0};
  const ClarkMax m = clark_max(a, b);

  Rng rng(1234);
  const std::size_t n = 400000;
  std::vector<double> samples(n);
  std::size_t a_wins = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xf = rng.normal();
    const double xg = rng.normal();
    const double va = a.mean_ps + a.a_focus_ps * xf + a.a_global_ps * xg +
                      a.local_ps * rng.normal();
    const double vb = b.mean_ps + b.a_focus_ps * xf + b.a_global_ps * xg +
                      b.local_ps * rng.normal();
    samples[i] = std::max(va, vb);
    if (va >= vb) ++a_wins;
  }
  const Summary s = summarize(samples);
  EXPECT_NEAR(m.value.mean_ps, s.mean, 0.05);
  EXPECT_NEAR(m.value.sigma_ps(), s.stddev, 0.05);
  EXPECT_NEAR(m.tightness_a, static_cast<double>(a_wins) / n, 0.01);
}

TEST(Canonical, ClarkMaxDegenerateTieKeepsIncumbent) {
  // Identical forms: theta ~ 0, and the strict-`>` Sta winner rule means
  // the incumbent (`a`) keeps the max.
  const CanonicalDelay a{50.0, 3.0, 1.0, 0.0};
  const ClarkMax m = clark_max(a, a);
  EXPECT_DOUBLE_EQ(m.tightness_a, 1.0);
  EXPECT_DOUBLE_EQ(m.value.mean_ps, a.mean_ps);
}

TEST(Canonical, ClarkMaxDominantInputSaturates) {
  const CanonicalDelay a{100.0, 0.0, 0.0, 1.0};
  const CanonicalDelay b{200.0, 0.0, 0.0, 1.0};
  const ClarkMax m = clark_max(a, b);
  EXPECT_DOUBLE_EQ(m.tightness_a, 0.0);
  EXPECT_DOUBLE_EQ(m.value.mean_ps, b.mean_ps);
}

TEST(Canonical, ClarkMaxExplicitLocalCovariance) {
  // Fully correlated locals (cov = la*lb) with equal variances: the max
  // degenerates to pick-by-mean, which the Clark overload must detect.
  const CanonicalDelay a{100.0, 2.0, 0.0, 6.0};
  const CanonicalDelay b{104.0, 2.0, 0.0, 6.0};
  const ClarkMax m = clark_max(a, b, a.local_ps * b.local_ps);
  EXPECT_DOUBLE_EQ(m.tightness_a, 0.0);
  EXPECT_DOUBLE_EQ(m.value.mean_ps, b.mean_ps);
  // Independent locals keep a genuine statistical max.
  const ClarkMax ind = clark_max(a, b, 0.0);
  EXPECT_GT(ind.tightness_a, 0.0);
  EXPECT_GT(ind.value.mean_ps, b.mean_ps);
}

// --------------------------------------------------- MC-oracle agreement

/// SSTA mean/sigma must track a 10k-sample context-aware Monte-Carlo
/// within 2% / 5% -- the acceptance bar for the analytical engine.
void expect_matches_mc(const std::string& name) {
  const Netlist nl = flow().make_benchmark(name);
  const Placement placement = flow().make_placement(nl);
  const std::vector<VersionKey> versions = flow().bind_versions(placement);
  const SstaVariationModel model = default_model();
  const SstaEngine engine(nl, flow().characterized(), flow().context_library(),
                          versions, model, flow().config().sta,
                          &flow().context_cache());
  const SstaResult ssta = engine.run();

  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const ContextAwareSampler sampler(nl, flow().context_library(), versions,
                                    model.budget, model.policy,
                                    model.global_share);
  MonteCarloConfig mc;
  mc.samples = 10000;
  const Summary s = run_monte_carlo(sta, sampler, mc).summary();

  EXPECT_NEAR(ssta.critical.mean_ps, s.mean, 0.02 * s.mean) << name;
  EXPECT_NEAR(ssta.critical.sigma_ps(), s.stddev, 0.05 * s.stddev) << name;
}

TEST(SstaOracle, C432MatchesMonteCarlo) { expect_matches_mc("C432"); }
TEST(SstaOracle, C880MatchesMonteCarlo) { expect_matches_mc("C880"); }
TEST(SstaOracle, C1908MatchesMonteCarlo) { expect_matches_mc("C1908"); }

// ------------------------------------------------------------ parallelism

TEST(SstaParallel, BitIdenticalAtAnyThreadCount) {
  const Netlist nl = flow().make_benchmark("C880");
  const Placement placement = flow().make_placement(nl);
  const std::vector<VersionKey> versions = flow().bind_versions(placement);
  const SstaEngine engine(nl, flow().characterized(), flow().context_library(),
                          versions, default_model(), flow().config().sta,
                          &flow().context_cache());
  const SstaResult serial = engine.run();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const SstaResult par = engine.run_parallel(pool);
    EXPECT_EQ(par.critical.mean_ps, serial.critical.mean_ps) << threads;
    EXPECT_EQ(par.critical.a_focus_ps, serial.critical.a_focus_ps) << threads;
    EXPECT_EQ(par.critical.local_ps, serial.critical.local_ps) << threads;
    ASSERT_EQ(par.arrival.size(), serial.arrival.size());
    for (std::size_t ni = 0; ni < serial.arrival.size(); ++ni) {
      ASSERT_EQ(par.arrival[ni].mean_ps, serial.arrival[ni].mean_ps) << ni;
      ASSERT_EQ(par.arrival[ni].local_ps, serial.arrival[ni].local_ps) << ni;
    }
    ASSERT_EQ(par.po_tightness, serial.po_tightness);
  }
}

// ------------------------------------------------------------ criticality

TEST(Criticality, ProbabilityMassIsConserved) {
  const Netlist nl = flow().make_benchmark("C880");
  const Placement placement = flow().make_placement(nl);
  const std::vector<VersionKey> versions = flow().bind_versions(placement);
  const SstaEngine engine(nl, flow().characterized(), flow().context_library(),
                          versions, default_model(), flow().config().sta,
                          &flow().context_cache());
  const SstaResult ssta = engine.run();

  // Endpoint tightness is a probability distribution over POs.
  double po_sum = 0.0;
  for (const double t : ssta.po_tightness) {
    EXPECT_GE(t, 0.0);
    po_sum += t;
  }
  EXPECT_NEAR(po_sum, 1.0, 1e-9);

  // Per-gate selection probabilities sum to 1 by construction.
  for (const std::vector<double>& q : ssta.gate_pin_tightness) {
    double sum = 0.0;
    for (const double v : q) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }

  const CriticalityResult crit = compute_criticality(nl, ssta);

  // The backward pass conserves mass: each gate splits its output-net
  // criticality across its fanin arcs.
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    double arc_sum = 0.0;
    for (const double c : crit.arc_criticality[gi]) arc_sum += c;
    EXPECT_NEAR(arc_sum, crit.net_criticality[nl.gates()[gi].output_net],
                1e-9)
        << gi;
  }

  // The primary inputs are a cutset of every path, so their
  // criticalities must also sum to 1.
  double pi_sum = 0.0;
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni)
    if (nl.nets()[ni].is_primary_input()) pi_sum += crit.net_criticality[ni];
  EXPECT_NEAR(pi_sum, 1.0, 1e-6);
}

// ------------------------------------------------------- job diagnostics

class SstaJobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::clear_all();
    Diagnostics::global().reset();
  }
  void TearDown() override {
    FailPoints::clear_all();
    Diagnostics::global().reset();
  }
};

TEST_F(SstaJobTest, FailpointSurfacesAsDiagnosedError) {
  FailPoints::set("ssta.propagate", "throw");
  ThreadPool pool(1);
  SstaJobSpec spec;
  spec.circuit = "C432";
  spec.csv_path.clear();
  const JobResult result = run_ssta_job(flow(), pool, spec, nullptr);
  EXPECT_EQ(result.exit_code, kExitFatal);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(Diagnostics::global().count_code("ssta_job_failed"), 1u);
}

TEST_F(SstaJobTest, RejectsBadSpec) {
  // Spec faults come back as an error result with a structured
  // diagnostic, not an exception (per-job isolation).
  ThreadPool pool(1);
  SstaJobSpec spec;
  spec.circuit = "C432";
  spec.quantile = 1.5;
  const JobResult result = run_ssta_job(flow(), pool, spec, nullptr);
  EXPECT_EQ(result.exit_code, kExitFatal);
  EXPECT_NE(result.error.find("quantile"), std::string::npos);
  EXPECT_EQ(Diagnostics::global().count_code("ssta_job_failed"), 1u);
}

TEST_F(SstaJobTest, ProducesReportAndArtifact) {
  ThreadPool pool(2);
  SstaJobSpec spec;
  spec.circuit = "C432";
  spec.clock_period_ps = 2500.0;
  const JobResult result = run_ssta_job(flow(), pool, spec, nullptr);
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_NE(result.output.find("block-based SSTA"), std::string::npos);
  EXPECT_NE(result.output.find("yield at clock"), std::string::npos);
  ASSERT_EQ(result.artifacts.size(), 1u);
  EXPECT_EQ(result.artifacts[0].path, "ssta_criticality.csv");
  EXPECT_NE(result.artifacts[0].bytes.find("kind,gate,pin,net"),
            std::string::npos);
}

}  // namespace
}  // namespace sva
