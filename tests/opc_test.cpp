// Tests for the opc module: cutline extraction, the model-based OPC
// engine (convergence, mask rules, residual bias), and the post-OPC
// pitch characterization.

#include <gtest/gtest.h>

#include <cmath>

#include "litho/cd_model.hpp"
#include "opc/cutline.hpp"
#include "opc/engine.hpp"
#include "opc/pitch_table.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

const LithoProcess& wafer_process() {
  static const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  return proc;
}

OpcProblem line_array(Nm linewidth, Nm pitch, std::size_t count) {
  OpcProblem problem;
  for (std::size_t k = 0; k < count; ++k) {
    OpcLine line;
    line.drawn_lo = static_cast<double>(k) * pitch;
    line.drawn_hi = line.drawn_lo + linewidth;
    line.mask_lo = line.drawn_lo;
    line.mask_hi = line.drawn_hi;
    line.tag = static_cast<long>(k);
    problem.lines.push_back(line);
  }
  return problem;
}

// ---------------------------------------------------------------- Cutline

TEST(Cutline, ExtractsPolyCrossingY) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::Poly, Rect::make(300, 600, 390, 1000));  // upper only
  layout.add(Layer::Diffusion, Rect::make(0, 0, 1000, 1000));
  const auto low = extract_cutline(layout, 100.0);
  EXPECT_EQ(low.lines.size(), 1u);
  const auto high = extract_cutline(layout, 800.0);
  EXPECT_EQ(high.lines.size(), 2u);
}

TEST(Cutline, IncludesDummyPoly) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::DummyPoly, Rect::make(300, 0, 390, 1000));
  EXPECT_EQ(extract_cutline(layout, 500.0).lines.size(), 2u);
}

TEST(Cutline, MergesAbuttingShapes) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::Poly, Rect::make(90, 0, 200, 1000));
  const auto problem = extract_cutline(layout, 500.0);
  ASSERT_EQ(problem.lines.size(), 1u);
  EXPECT_DOUBLE_EQ(problem.lines[0].drawn_width(), 200.0);
}

TEST(Cutline, MergedTagTakenFromWiderShape) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::Poly, Rect::make(90, 0, 300, 1000));
  const std::vector<long> tags = {7, 9};
  const auto problem = extract_cutline(layout, 500.0, tags);
  ASSERT_EQ(problem.lines.size(), 1u);
  EXPECT_EQ(problem.lines[0].tag, 9);
}

TEST(Cutline, TagsAssigned) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::Poly, Rect::make(300, 0, 390, 1000));
  const std::vector<long> tags = {42, -1};
  const auto problem = extract_cutline(layout, 500.0, tags);
  ASSERT_EQ(problem.lines.size(), 2u);
  EXPECT_EQ(problem.lines[0].tag, 42);
  EXPECT_EQ(problem.lines[1].tag, -1);
}

TEST(Cutline, ValidateRejectsOverlap) {
  OpcProblem p;
  OpcLine a;
  a.drawn_lo = 0;
  a.drawn_hi = 100;
  a.mask_lo = 0;
  a.mask_hi = 100;
  OpcLine b = a;
  b.drawn_lo = 50;
  b.drawn_hi = 150;
  b.mask_lo = 50;
  b.mask_hi = 150;
  p.lines = {a, b};
  EXPECT_THROW(p.validate(), PreconditionError);
}

// ---------------------------------------------------------------- Engine

TEST(OpcEngine, ImprovesPrintedCdTowardTarget) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const auto problem = line_array(90.0, 690.0, 5);  // isolated lines

  // Uncorrected: isolated lines print thin.
  const auto raw = engine.measure(problem);
  const Nm raw_err = std::abs(raw.by_tag(2).printed_cd - 90.0);
  EXPECT_GT(raw_err, 3.0);

  const auto corrected = engine.correct(problem);
  const Nm corr_err = std::abs(corrected.by_tag(2).printed_cd - 90.0);
  EXPECT_LT(corr_err, raw_err);
  EXPECT_LT(corr_err, 3.5);
}

TEST(OpcEngine, ResidualIsoDenseBiasRemains) {
  // The paper's key observation: even after OPC, dense and isolated
  // features print systematically differently.
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const auto pts = characterize_post_opc_pitch(proc, engine, 90.0,
                                               {150.0, 300.0, 600.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(post_opc_pitch_half_range(pts), 0.5);
}

TEST(OpcEngine, MasksRespectGrid) {
  const auto& proc = wafer_process();
  OpcConfig config;
  config.mask_grid = 2.0;
  OpcEngine engine(proc, config);
  const auto result = engine.correct(line_array(90.0, 400.0, 3));
  for (const auto& lr : result.lines) {
    const double lo = lr.line.mask_lo / config.mask_grid;
    const double hi = lr.line.mask_hi / config.mask_grid;
    EXPECT_NEAR(lo, std::round(lo), 1e-9);
    EXPECT_NEAR(hi, std::round(hi), 1e-9);
  }
}

TEST(OpcEngine, MasksRespectMaxBias) {
  const auto& proc = wafer_process();
  OpcConfig config;
  config.max_bias = 10.0;
  OpcEngine engine(proc, config);
  const auto result = engine.correct(line_array(90.0, 900.0, 3));
  for (const auto& lr : result.lines) {
    EXPECT_LE(std::abs(lr.line.mask_lo - lr.line.drawn_lo),
              config.max_bias + 1e-9);
    EXPECT_LE(std::abs(lr.line.mask_hi - lr.line.drawn_hi),
              config.max_bias + 1e-9);
  }
}

TEST(OpcEngine, MasksRespectMinWidth) {
  const auto& proc = wafer_process();
  OpcConfig config;
  config.min_width = 70.0;
  OpcEngine engine(proc, config);
  const auto result = engine.correct(line_array(90.0, 240.0, 5));
  for (const auto& lr : result.lines)
    EXPECT_GE(lr.line.mask_width(), config.min_width - 1e-9);
}

TEST(OpcEngine, ZeroIterationsLeavesMaskAtDrawn) {
  const auto& proc = wafer_process();
  OpcConfig config;
  config.max_iterations = 0;
  OpcEngine engine(proc, config);
  const auto problem = line_array(90.0, 400.0, 3);
  const auto result = engine.correct(problem);
  for (std::size_t i = 0; i < result.lines.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.lines[i].line.mask_lo,
                     problem.lines[i].drawn_lo);
    EXPECT_DOUBLE_EQ(result.lines[i].line.mask_hi,
                     problem.lines[i].drawn_hi);
  }
}

TEST(OpcEngine, MoreIterationsDoNotWorsenConvergence) {
  const auto& proc = wafer_process();
  OpcConfig few;
  few.max_iterations = 1;
  OpcConfig many;
  many.max_iterations = 6;
  const auto problem = line_array(90.0, 500.0, 5);
  const Nm err_few =
      OpcEngine(proc, few).correct(problem).final_max_epe;
  const Nm err_many =
      OpcEngine(proc, many).correct(problem).final_max_epe;
  EXPECT_LE(err_many, err_few + 0.5);
}

TEST(OpcEngine, ModelMismatchLeavesResidual) {
  // Dual-process engine: corrections driven by a model that differs from
  // the wafer leave a systematic residual even with many iterations.
  OpticsConfig model_optics;
  model_optics.resist_diffusion_length = 15.0;
  const LithoProcess model(model_optics, 90.0, 240.0);
  const auto& wafer = wafer_process();

  OpcConfig config;
  config.max_iterations = 8;
  OpcEngine mismatched(model, wafer, config);
  OpcEngine matched(wafer, config);

  const auto problem = line_array(90.0, 600.0, 5);
  const Nm err_mismatched =
      std::abs(mismatched.correct(problem).by_tag(2).printed_cd - 90.0);
  const Nm err_matched =
      std::abs(matched.correct(problem).by_tag(2).printed_cd - 90.0);
  EXPECT_GT(err_mismatched, err_matched);
}

TEST(OpcEngine, ByTagThrowsOnUnknown) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const auto result = engine.measure(line_array(90.0, 400.0, 3));
  EXPECT_THROW(result.by_tag(99), PreconditionError);
}

TEST(OpcEngine, MeasureCountsImages) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const auto result = engine.measure(line_array(90.0, 400.0, 4));
  EXPECT_EQ(result.images_simulated, 4u);
}

TEST(OpcEngine, RejectsBadConfig) {
  const auto& proc = wafer_process();
  OpcConfig bad;
  bad.damping = 0.0;
  EXPECT_THROW(OpcEngine(proc, bad), PreconditionError);
  bad = OpcConfig{};
  bad.min_width = -1.0;
  EXPECT_THROW(OpcEngine(proc, bad), PreconditionError);
}

// ------------------------------------------------------------ Pitch table

TEST(PostOpcPitch, DenseLargerThanIso) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const auto pts =
      characterize_post_opc_pitch(proc, engine, 90.0, {150.0, 600.0});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[0].printed_cd, pts[1].printed_cd);
}

TEST(PostOpcPitch, TableIsQueryable) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const auto pts = characterize_post_opc_pitch(proc, engine, 90.0,
                                               {150.0, 300.0, 600.0});
  const auto table = post_opc_spacing_table(pts);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_GT(table.at(150.0), 0.0);
  EXPECT_GT(table.at(400.0), 0.0);  // interpolated
}

TEST(PostOpcPitch, RequiresOddArray) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  EXPECT_THROW(
      characterize_post_opc_pitch(proc, engine, 90.0, {150.0}, 4),
      PreconditionError);
}

// Property sweep: post-OPC printed CD lands within a few percent of
// target over the full spacing range (OPC works, residual is bounded).
class PostOpcAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(PostOpcAccuracy, ResidualBounded) {
  const auto& proc = wafer_process();
  OpcEngine engine(proc, OpcConfig{});
  const double spacing = GetParam();
  const auto pts =
      characterize_post_opc_pitch(proc, engine, 90.0, {spacing});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GT(pts[0].printed_cd, 0.0);
  EXPECT_NEAR(pts[0].printed_cd, 90.0, 0.12 * 90.0);
}

INSTANTIATE_TEST_SUITE_P(Spacings, PostOpcAccuracy,
                         ::testing::Values(150.0, 200.0, 280.0, 350.0,
                                           450.0, 600.0, 900.0));

}  // namespace
}  // namespace sva
