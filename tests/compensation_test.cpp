// Tests for placement mutation and the variation-aware whitespace
// optimizer.

#include <gtest/gtest.h>

#include "core/compensation.hpp"
#include "core/flow.hpp"

namespace sva {
namespace {

const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

TEST(ShiftInstance, RangeRespectsNeighbors) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    const auto [lo, hi] = p.shift_range(gi);
    EXPECT_LE(lo, 0.0);
    EXPECT_GE(hi, 0.0);
  }
}

TEST(ShiftInstance, MoveAndRestore) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  // Find an instance with real slack on the right.
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    const auto [lo, hi] = p.shift_range(gi);
    if (hi < 170.0) continue;
    const Nm x0 = p.instances()[gi].x;
    p.shift_instance(gi, 170.0);
    EXPECT_DOUBLE_EQ(p.instances()[gi].x, x0 + 170.0);
    p.shift_instance(gi, -170.0);
    EXPECT_DOUBLE_EQ(p.instances()[gi].x, x0);
    return;
  }
  FAIL() << "no instance with whitespace found";
}

TEST(ShiftInstance, RejectsOverlap) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    const auto [lo, hi] = p.shift_range(gi);
    EXPECT_THROW(p.shift_instance(gi, hi + 50.0), PreconditionError);
    EXPECT_THROW(p.shift_instance(gi, lo - 50.0), PreconditionError);
    break;
  }
}

TEST(ShiftInstance, MoveChangesNps) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    const auto [lo, hi] = p.shift_range(gi);
    if (hi < 170.0) continue;
    if (p.left_neighbor(gi) == static_cast<std::size_t>(-1)) continue;
    const auto before = extract_nps(p);
    if (before[gi].lt >= 600.0) continue;  // already saturated at ROI
    p.shift_instance(gi, 170.0);
    const auto after = extract_nps(p);
    EXPECT_NEAR(after[gi].lt, std::min(600.0, before[gi].lt + 170.0), 1e-6);
    return;
  }
  GTEST_SKIP() << "no movable instance with an unsaturated left spacing";
}

TEST(Compensation, NeverWorsensWorstCase) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  CompensationConfig config;
  config.max_passes = 1;
  config.candidates_per_pass = 10;
  const CompensationResult r = compensate_placement(
      p, flow().context_library(), flow().characterized(),
      flow().config().budget, flow().config().sta, config);
  EXPECT_LE(r.wc_after_ps, r.wc_before_ps + 1e-6);
  EXPECT_GE(r.moves_evaluated, r.moves_applied);
}

TEST(Compensation, ResultMatchesFreshEvaluation) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  CompensationConfig config;
  config.max_passes = 1;
  config.candidates_per_pass = 10;
  const CompensationResult r = compensate_placement(
      p, flow().context_library(), flow().characterized(),
      flow().config().budget, flow().config().sta, config);

  // Re-evaluate the mutated placement from scratch.
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const auto nps = extract_nps(p);
  const auto versions = assign_versions(nps, flow().config().bins);
  const SvaCornerScale wc(nl, flow().context_library(), versions,
                          flow().config().budget, Corner::Worst,
                          ArcLabelPolicy::Majority, &nps);
  EXPECT_NEAR(sta.run(wc).critical_delay_ps, r.wc_after_ps, 1e-6);
}

TEST(Compensation, RejectsBadConfig) {
  const Netlist nl = flow().make_benchmark("C432");
  Placement p = flow().make_placement(nl);
  CompensationConfig bad;
  bad.max_passes = 0;
  EXPECT_THROW(
      compensate_placement(p, flow().context_library(),
                           flow().characterized(), flow().config().budget,
                           flow().config().sta, bad),
      PreconditionError);
}

}  // namespace
}  // namespace sva
