// Tests for the core module: CD budget, classification, the paper's
// corner equations (1)-(5), and the corner scale providers.

#include <gtest/gtest.h>

#include "core/budget.hpp"
#include "core/classify.hpp"
#include "core/corners.hpp"
#include "core/scales.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

CdBudget paper_budget() {
  CdBudget b;
  b.total_fraction = 0.10;
  b.pitch_share = 0.30;
  b.focus_share = 0.30;
  b.other_process_fraction = 0.05;
  return b;
}

// ---------------------------------------------------------------- Budget

TEST(Budget, AbsoluteValues) {
  const CdBudget b = paper_budget();
  EXPECT_DOUBLE_EQ(b.total(90.0), 9.0);
  EXPECT_DOUBLE_EQ(b.lvar_pitch(90.0), 2.7);
  EXPECT_DOUBLE_EQ(b.lvar_focus(90.0), 2.7);
}

TEST(Budget, ValidateRejectsOverfullShares) {
  CdBudget b = paper_budget();
  b.pitch_share = 0.6;
  b.focus_share = 0.6;
  EXPECT_THROW(b.validate(), PreconditionError);
  b = paper_budget();
  b.total_fraction = 0.0;
  EXPECT_THROW(b.validate(), PreconditionError);
}

TEST(Budget, OtherProcessFactor) {
  const CdBudget b = paper_budget();
  EXPECT_DOUBLE_EQ(b.other_process_factor(true), 1.05);
  EXPECT_DOUBLE_EQ(b.other_process_factor(false), 0.95);
}

// ---------------------------------------------------------------- Classify

TEST(Classify, DeviceClasses) {
  const Nm cp = 340.0;
  EXPECT_EQ(classify_device(150.0, 150.0, cp), DeviceClass::Dense);
  EXPECT_EQ(classify_device(600.0, 600.0, cp), DeviceClass::Isolated);
  EXPECT_EQ(classify_device(150.0, 600.0, cp),
            DeviceClass::SelfCompensated);
  EXPECT_EQ(classify_device(600.0, 150.0, cp),
            DeviceClass::SelfCompensated);
  // Boundary: exactly at contacted pitch counts as isolated ("less than").
  EXPECT_EQ(classify_device(340.0, 340.0, cp), DeviceClass::Isolated);
}

TEST(Classify, ArcMajorityRule) {
  using D = DeviceClass;
  // Paper footnote 6: two isolated + one dense => frowning.
  EXPECT_EQ(classify_arc({D::Isolated, D::Isolated, D::Dense}),
            ArcClass::Frown);
  EXPECT_EQ(classify_arc({D::Dense, D::Dense, D::Isolated}),
            ArcClass::Smile);
  EXPECT_EQ(classify_arc({D::Dense}), ArcClass::Smile);
  EXPECT_EQ(classify_arc({D::Isolated}), ArcClass::Frown);
  // Ties and self-compensated majorities.
  EXPECT_EQ(classify_arc({D::Dense, D::Isolated}),
            ArcClass::SelfCompensated);
  EXPECT_EQ(classify_arc({D::SelfCompensated, D::SelfCompensated, D::Dense}),
            ArcClass::SelfCompensated);
}

TEST(Classify, ArcConservativePolicy) {
  using D = DeviceClass;
  const auto policy = ArcLabelPolicy::Conservative;
  EXPECT_EQ(classify_arc({D::Dense, D::Dense}, policy), ArcClass::Smile);
  EXPECT_EQ(classify_arc({D::Isolated, D::Isolated}, policy),
            ArcClass::Frown);
  // Any mixture is self-compensated under the conservative policy.
  EXPECT_EQ(classify_arc({D::Dense, D::Dense, D::Isolated}, policy),
            ArcClass::SelfCompensated);
}

TEST(Classify, EmptyArcRejected) {
  EXPECT_THROW(classify_arc({}), PreconditionError);
}

TEST(Classify, Names) {
  EXPECT_STREQ(to_string(DeviceClass::Dense), "dense");
  EXPECT_STREQ(to_string(ArcClass::Frown), "frown");
}

// ---------------------------------------------------------------- Corners

TEST(Corners, TraditionalFullBudget) {
  const CornerLengths c = traditional_corners(90.0, paper_budget());
  EXPECT_DOUBLE_EQ(c.nom, 90.0);
  EXPECT_DOUBLE_EQ(c.wc, 99.0);
  EXPECT_DOUBLE_EQ(c.bc, 81.0);
  EXPECT_DOUBLE_EQ(c.spread(), 18.0);
}

TEST(Corners, Equation1PitchRemoval) {
  // Self-compensated arcs see focus trimming on both sides; verify the
  // pitch-corner core (Eq. 1) through the smile arc's WC, which is exactly
  // WC_pitch.
  const CdBudget b = paper_budget();
  const CornerLengths c = sva_corners(90.0, 88.0, ArcClass::Smile, b);
  // WC_pitch = l_nom_new + (total - lvar_pitch) = 88 + (9 - 2.7).
  EXPECT_DOUBLE_EQ(c.wc, 88.0 + 6.3);
  // BC_smile = BC_pitch + lvar_focus = 88 - 6.3 + 2.7.
  EXPECT_DOUBLE_EQ(c.bc, 88.0 - 6.3 + 2.7);
  EXPECT_DOUBLE_EQ(c.nom, 88.0);
}

TEST(Corners, Equations3FrownTrimsWorstCase) {
  const CdBudget b = paper_budget();
  const CornerLengths c = sva_corners(90.0, 86.0, ArcClass::Frown, b);
  EXPECT_DOUBLE_EQ(c.wc, 86.0 + 6.3 - 2.7);
  EXPECT_DOUBLE_EQ(c.bc, 86.0 - 6.3);
}

TEST(Corners, Equations45SelfCompensatedTrimsBoth) {
  const CdBudget b = paper_budget();
  const CornerLengths c =
      sva_corners(90.0, 90.0, ArcClass::SelfCompensated, b);
  EXPECT_DOUBLE_EQ(c.wc, 90.0 + 6.3 - 2.7);
  EXPECT_DOUBLE_EQ(c.bc, 90.0 - 6.3 + 2.7);
}

TEST(Corners, SvaSpreadNeverExceedsTraditional) {
  const CdBudget b = paper_budget();
  const CornerLengths trad = traditional_corners(90.0, b);
  for (ArcClass cls : {ArcClass::Smile, ArcClass::Frown,
                       ArcClass::SelfCompensated}) {
    const CornerLengths c = sva_corners(90.0, 90.0, cls, b);
    EXPECT_LT(c.spread(), trad.spread());
    EXPECT_GE(c.wc, c.nom);
    EXPECT_LE(c.bc, c.nom);
  }
}

TEST(Corners, ZeroSharesReproduceTraditionalSpread) {
  CdBudget b = paper_budget();
  b.pitch_share = 0.0;
  b.focus_share = 0.0;
  const CornerLengths c = sva_corners(90.0, 90.0, ArcClass::Smile, b);
  EXPECT_DOUBLE_EQ(c.spread(), traditional_corners(90.0, b).spread());
}

TEST(Corners, CornerAccessor) {
  const CornerLengths c{81.0, 90.0, 99.0};
  EXPECT_DOUBLE_EQ(c.at(Corner::Best), 81.0);
  EXPECT_DOUBLE_EQ(c.at(Corner::Nominal), 90.0);
  EXPECT_DOUBLE_EQ(c.at(Corner::Worst), 99.0);
  EXPECT_STREQ(to_string(Corner::Worst), "WC");
}

TEST(Corners, RejectsBadInputs) {
  EXPECT_THROW(traditional_corners(-1.0, paper_budget()),
               PreconditionError);
  EXPECT_THROW(sva_corners(90.0, 0.0, ArcClass::Smile, paper_budget()),
               PreconditionError);
}

// --------------------------------------------------------- Corner scales

TEST(TraditionalCornerScale, FactorsIncludeOtherProcess) {
  const CdBudget b = paper_budget();
  const TraditionalCornerScale wc(90.0, b, Corner::Worst);
  const TraditionalCornerScale bc(90.0, b, Corner::Best);
  const TraditionalCornerScale nom(90.0, b, Corner::Nominal);
  EXPECT_DOUBLE_EQ(nom.factor(), 1.0);
  EXPECT_DOUBLE_EQ(wc.factor(), 1.10 * 1.05);
  EXPECT_DOUBLE_EQ(bc.factor(), 0.90 * 0.95);
}

// Property: for every arc class and several context lengths, the SVA WC
// factor is below the traditional WC factor and the BC factor above the
// traditional BC factor whenever the context length is at most nominal.
class CornerDominance
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(CornerDominance, SvaWithinTraditionalBracket) {
  const double l_new = std::get<0>(GetParam());
  const auto cls = static_cast<ArcClass>(std::get<1>(GetParam()));
  const CdBudget b = paper_budget();
  const CornerLengths trad = traditional_corners(90.0, b);
  const CornerLengths c = sva_corners(90.0, l_new, cls, b);
  if (l_new <= 90.0) {
    EXPECT_LE(c.wc, trad.wc);
  }
  if (l_new >= 90.0) {
    EXPECT_GE(c.bc, trad.bc);
  }
  EXPECT_GT(c.spread(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CornerDominance,
    ::testing::Combine(::testing::Values(84.0, 87.0, 90.0, 93.0),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace sva
