// Execution-engine tests: thread pool semantics, bit-exactness of the
// levelized parallel STA path, schedule-independence of the batch runner,
// and coherence of the memoized context cache under concurrent access.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/flow.hpp"
#include "engine/batch.hpp"
#include "engine/context_cache.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "place/context.hpp"
#include "util/serialize.hpp"

namespace sva {
namespace {

/// Flow construction runs library OPC; share one instance across tests.
const SvaFlow& shared_flow() {
  static const SvaFlow* flow = new SvaFlow(FlowConfig{});
  return *flow;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 64, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPoolTest, ZeroThreadPoolRunsWorkOnWaiters) {
  ThreadPool pool(0);
  std::atomic<int> total{0};
  pool.parallel_for(0, 100, [&](std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);

  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i)
    group.run([&] { total.fetch_add(1, std::memory_order_relaxed); });
  group.wait();  // drains the queue on this thread
  EXPECT_EQ(total.load(), 110);
  EXPECT_GE(pool.stats().executed, 10u);
}

TEST(ThreadPoolTest, TaskGroupPropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 0; i < 4; ++i)
    group.run([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(EngineStaTest, ParallelStaBitIdenticalToSerial) {
  const SvaFlow& flow = shared_flow();
  // C3540 has the widest levels; C880 covers the narrow-level inline path.
  for (const char* name : {"C880", "C3540"}) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    const Sta sta(netlist, flow.characterized(), flow.config().sta);
    const auto nps = extract_nps(placement);
    const auto versions = assign_versions(nps, flow.config().bins);
    const SvaCornerScale wc(netlist, flow.context_library(), versions,
                            flow.config().budget, Corner::Worst,
                            flow.config().arc_policy, &nps,
                            &flow.context_cache());
    const StaResult serial = sta.run(wc);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      const StaResult parallel = sta.run_parallel(wc, pool);
      // Exact equality, not near-equality: the parallel schedule must not
      // change a single bit of the propagation.
      EXPECT_EQ(parallel.arrival_ps, serial.arrival_ps)
          << name << " @ " << threads << " threads";
      EXPECT_EQ(parallel.slew_ps, serial.slew_ps);
      EXPECT_EQ(parallel.from_net, serial.from_net);
      EXPECT_EQ(parallel.critical_delay_ps, serial.critical_delay_ps);
      EXPECT_EQ(parallel.critical_po_net, serial.critical_po_net);
      EXPECT_EQ(parallel.critical_path, serial.critical_path);
    }
  }
}

void expect_same_analysis(const CircuitAnalysis& a, const CircuitAnalysis& b,
                          const std::string& what) {
  EXPECT_EQ(a.name, b.name) << what;
  EXPECT_EQ(a.gate_count, b.gate_count) << what;
  EXPECT_EQ(a.trad_nom_ps, b.trad_nom_ps) << what;
  EXPECT_EQ(a.trad_bc_ps, b.trad_bc_ps) << what;
  EXPECT_EQ(a.trad_wc_ps, b.trad_wc_ps) << what;
  EXPECT_EQ(a.sva_nom_ps, b.sva_nom_ps) << what;
  EXPECT_EQ(a.sva_bc_ps, b.sva_bc_ps) << what;
  EXPECT_EQ(a.sva_wc_ps, b.sva_wc_ps) << what;
  EXPECT_EQ(a.arc_class_counts, b.arc_class_counts) << what;
}

TEST(EngineBatchTest, ResultsIndependentOfThreadCountAndSchedule) {
  const SvaFlow& flow = shared_flow();
  const std::vector<std::string> names = {"C432", "C880"};

  // Serial references through the plain analyze() path.
  std::vector<CircuitAnalysis> reference;
  for (const std::string& name : names) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    reference.push_back(flow.analyze(netlist, placement));
  }

  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const BatchRunner runner(flow, pool);
    // Two runs per pool: the second sees a warm cache and a different
    // task interleaving; both must reproduce the serial result exactly.
    for (int round = 0; round < 2; ++round) {
      const BatchResult batch = runner.run_names(names);
      ASSERT_EQ(batch.analyses.size(), names.size());
      for (std::size_t i = 0; i < names.size(); ++i)
        expect_same_analysis(batch.analyses[i], reference[i],
                             names[i] + " @ " + std::to_string(threads) +
                                 " threads, round " + std::to_string(round));
    }
  }
}

TEST(ContextCacheTest, MatchesEagerExpansionUnderConcurrentAccess) {
  const SvaFlow& flow = shared_flow();
  const ContextLibrary& library = flow.context_library();
  const std::size_t cells = library.characterized().cells.size();
  const std::size_t versions = library.bins().version_count();
  const std::size_t bins = library.bins().count();

  // Eager expansion: every (cell, version, arc) scale straight from the
  // context library.
  std::vector<std::vector<std::vector<double>>> eager(cells);
  for (std::size_t ci = 0; ci < cells; ++ci) {
    const std::size_t arcs =
        library.characterized().cells[ci].master.arcs().size();
    eager[ci].resize(versions);
    for (std::size_t vi = 0; vi < versions; ++vi) {
      const VersionKey key = version_key(vi, bins);
      for (std::size_t ai = 0; ai < arcs; ++ai)
        eager[ci][vi].push_back(library.arc_delay_scale(ci, key, ai));
    }
  }

  // Fresh cache hammered from 4 threads, several passes over every slot,
  // so first touches race and later passes must hit.
  const ContextCache cache(library);
  ThreadPool pool(4);
  constexpr std::size_t kPasses = 4;
  pool.parallel_for(0, versions * kPasses, [&](std::size_t i) {
    const std::size_t vi = i % versions;
    const VersionKey key = version_key(vi, bins);
    for (std::size_t ci = 0; ci < cells; ++ci)
      for (std::size_t ai = 0; ai < eager[ci][vi].size(); ++ai)
        ASSERT_EQ(cache.arc_delay_scale(ci, key, ai), eager[ci][vi][ai]);
  });

  const ContextCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.capacity, cells * versions);
  // Every slot characterized exactly once, no matter how many threads
  // raced to it...
  EXPECT_EQ(stats.characterized, cells * versions);
  EXPECT_EQ(stats.misses, cells * versions);
  // ...and all remaining lookups were served from the memo.
  EXPECT_GT(stats.hits, stats.misses);
}

TEST(ContextCacheTest, FlowCacheIsSharedAcrossAnalyses) {
  const SvaFlow& flow = shared_flow();
  const ContextCache::Stats before = flow.context_cache().stats();
  ThreadPool pool(2);
  const BatchRunner runner(flow, pool);
  runner.run_names({"C432", "C432"});
  const ContextCache::Stats after = flow.context_cache().stats();
  EXPECT_GT(after.hits, before.hits);
  // The version universe is bounded: repeated analyses cannot add slots
  // beyond capacity.
  EXPECT_LE(after.characterized, after.capacity);
}

// ------------------------------------------------- persistent snapshot

/// Fresh per-test cache directory under the gtest temp dir.
std::string persist_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sva_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ContextCachePersistTest, SaveLoadRoundTripIsBitIdentical) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::size_t bins = library.bins().count();
  const std::string dir = persist_dir("roundtrip");

  const ContextCache cold(library);
  cold.warm_all();
  const std::size_t saved = cold.save(dir);
  EXPECT_EQ(saved, cold.stats().capacity);

  const ContextCache warm(library);
  ASSERT_TRUE(warm.try_load(dir));
  const ContextCache::Stats stats = warm.stats();
  EXPECT_EQ(stats.disk_hits, stats.capacity);
  EXPECT_EQ(stats.disk_misses, 0u);
  EXPECT_EQ(stats.characterized, stats.capacity);
  // Restoring is not a (re)characterization miss.
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GT(stats.load_ns, 0u);
  EXPECT_GT(cold.stats().save_ns, 0u);

  // Every slot value and derived scale must match the cold cache exactly.
  const std::size_t cells = library.characterized().cells.size();
  for (std::size_t ci = 0; ci < cells; ++ci) {
    const std::size_t arcs =
        library.characterized().cells[ci].master.arcs().size();
    for (std::size_t vi = 0; vi < library.bins().version_count(); ++vi) {
      const VersionKey key = version_key(vi, bins);
      ASSERT_EQ(warm.version_lengths(ci, key), cold.version_lengths(ci, key));
      for (std::size_t ai = 0; ai < arcs; ++ai)
        ASSERT_EQ(warm.arc_delay_scale(ci, key, ai),
                  cold.arc_delay_scale(ci, key, ai));
    }
  }
}

TEST(ContextCachePersistTest, PartialSnapshotRestoresOnlyFilledSlots) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::size_t bins = library.bins().count();
  const std::string dir = persist_dir("partial");

  const ContextCache partial(library);
  constexpr std::size_t kFilled = 5;
  for (std::size_t vi = 0; vi < kFilled; ++vi)
    partial.version_lengths(0, version_key(vi, bins));
  EXPECT_EQ(partial.save(dir), kFilled);

  const ContextCache warm(library);
  ASSERT_TRUE(warm.try_load(dir));
  EXPECT_EQ(warm.stats().disk_hits, kFilled);
  EXPECT_EQ(warm.stats().characterized, kFilled);

  // A restored slot is a hit; an unrestored one characterizes on demand.
  warm.version_lengths(0, version_key(0, bins));
  EXPECT_EQ(warm.stats().misses, 0u);
  warm.version_lengths(0, version_key(kFilled, bins));
  EXPECT_EQ(warm.stats().misses, 1u);
}

TEST(ContextCachePersistTest, LoadIntoWarmCacheKeepsComputedValues) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::size_t bins = library.bins().count();
  const std::string dir = persist_dir("overlay");

  {
    const ContextCache seed(library);
    seed.warm_all();
    seed.save(dir);
  }
  const ContextCache cache(library);
  const std::vector<Nm> before =
      cache.version_lengths(0, version_key(0, bins));
  ASSERT_TRUE(cache.try_load(dir));
  // The already-computed slot was not overwritten (it was not a disk hit),
  // and its value is unchanged.
  EXPECT_EQ(cache.stats().disk_hits, cache.stats().capacity - 1);
  EXPECT_EQ(cache.version_lengths(0, version_key(0, bins)), before);
}

TEST(ContextCachePersistTest, RejectsMangledSnapshots) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::size_t bins = library.bins().count();
  const std::string dir = persist_dir("mangle");

  const ContextCache seed(library);
  seed.warm_all();
  seed.save(dir);
  const std::string path = seed.cache_file_path(dir);
  const std::string good = read_file_bytes(path);

  const auto write_raw = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const auto flipped = [&](std::size_t offset) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x5a);
    return bad;
  };

  struct Case {
    const char* what;
    std::string bytes;
  };
  const std::vector<Case> cases = {
      {"flipped magic", flipped(0)},
      {"flipped format version", flipped(4)},
      {"flipped content hash", flipped(8)},
      {"flipped header grid", flipped(17)},
      {"flipped payload byte", flipped(good.size() - 3)},
      {"truncated header", good.substr(0, 10)},
      {"truncated payload", good.substr(0, good.size() / 2)},
      {"empty file", std::string{}},
      {"garbage", std::string(200, '\x42')},
  };
  for (const Case& c : cases) {
    write_raw(c.bytes);
    const ContextCache cache(library);
    EXPECT_FALSE(cache.try_load(dir)) << c.what;
    const ContextCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.disk_hits, 0u) << c.what;
    EXPECT_EQ(stats.disk_misses, 1u) << c.what;
    // No slot was poisoned: a cold query still matches the library.
    EXPECT_EQ(stats.characterized, 0u) << c.what;
    EXPECT_EQ(cache.arc_effective_length(0, version_key(0, bins), 0),
              library.arc_effective_length(0, version_key(0, bins), 0))
        << c.what;
  }

  // The pristine bytes still load, so the rejections above were caused by
  // the mangling alone.
  write_raw(good);
  const ContextCache cache(library);
  EXPECT_TRUE(cache.try_load(dir));
}

TEST(ContextCachePersistTest, MissingSnapshotIsACleanColdStart) {
  const ContextLibrary& library = shared_flow().context_library();
  const ContextCache cache(library);
  EXPECT_FALSE(cache.try_load(persist_dir("missing")));
  EXPECT_EQ(cache.stats().disk_misses, 1u);
  EXPECT_EQ(cache.stats().characterized, 0u);
}

TEST(EngineOptionsTest, DefaultsWhenNoFlagsPresent) {
  std::vector<std::string> args = {"C432", "C880"};
  const EngineOptions opts = extract_engine_options(args);
  EXPECT_EQ(opts.threads, ThreadPool::default_thread_count());
  EXPECT_FALSE(opts.metrics);
  EXPECT_FALSE(opts.no_cache);
  EXPECT_EQ(args, (std::vector<std::string>{"C432", "C880"}));
}

TEST(EngineOptionsTest, CacheFlagsParsed) {
  std::vector<std::string> args = {"C432", "--cache-dir", "/tmp/x",
                                   "--no-cache"};
  const EngineOptions opts = extract_engine_options(args);
  EXPECT_EQ(opts.cache_dir, "/tmp/x");
  EXPECT_TRUE(opts.no_cache);
  EXPECT_FALSE(opts.cache_enabled());
  EXPECT_EQ(args, (std::vector<std::string>{"C432"}));
}

TEST(EngineOptionsTest, CacheEnabledByDefault) {
  std::vector<std::string> args = {"C432"};
  const EngineOptions opts = extract_engine_options(args);
  EXPECT_FALSE(opts.no_cache);
  EXPECT_FALSE(opts.cache_dir.empty());
  EXPECT_TRUE(opts.cache_enabled());
}

TEST(EngineOptionsTest, StripsFlagsAnywhereInTheList) {
  std::vector<std::string> args = {"--metrics", "C432", "--threads", "7",
                                   "C880"};
  const EngineOptions opts = extract_engine_options(args);
  EXPECT_EQ(opts.threads, 7u);
  EXPECT_TRUE(opts.metrics);
  EXPECT_EQ(args, (std::vector<std::string>{"C432", "C880"}));
}

TEST(EngineOptionsTest, ThreadsZeroIsAccepted) {
  std::vector<std::string> args = {"--threads", "0"};
  EXPECT_EQ(extract_engine_options(args).threads, 0u);
}

TEST(EngineOptionsTest, MissingValueThrowsUniformMessage) {
  std::vector<std::string> args = {"--threads"};
  try {
    extract_engine_options(args);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "--threads requires a value");
  }
}

TEST(EngineOptionsTest, MalformedValueThrowsUniformMessage) {
  for (const char* bad : {"abc", "3x", "-2", ""}) {
    std::vector<std::string> args = {"--threads", bad};
    try {
      extract_engine_options(args);
      FAIL() << "expected an exception for '" << bad << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string("--threads expects a non-negative integer, "
                            "got '") +
                    bad + "'");
    }
  }
}

TEST(EngineOptionsTest, SizeFlagParserSharedBySubcommands) {
  EXPECT_EQ(parse_size_flag("--max-moves", "12"), 12u);
  EXPECT_THROW(parse_size_flag("--max-moves", "1.5"), std::runtime_error);
  EXPECT_THROW(parse_size_flag("-n", "-1"), std::runtime_error);
}

TEST(EngineOptionsTest, DoubleFlagParserSharedBySubcommands) {
  EXPECT_DOUBLE_EQ(parse_double_flag("--clock", "2.25"), 2.25);
  EXPECT_THROW(parse_double_flag("--clock", "0"), std::runtime_error);
  EXPECT_THROW(parse_double_flag("--clock", "-3"), std::runtime_error);
  EXPECT_THROW(parse_double_flag("--clock", "2ns"), std::runtime_error);
}

TEST(EngineOptionsTest, FlagValueAdvancesPastTheValue) {
  const std::vector<std::string> args = {"--clock", "2.0", "--metrics"};
  std::size_t i = 0;
  EXPECT_EQ(flag_value(args, i), "2.0");
  EXPECT_EQ(i, 1u);
}

}  // namespace
}  // namespace sva
