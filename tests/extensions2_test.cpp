// Tests for the second extension wave: .bench parsing, DRC, process
// windows, attenuated PSM, spatial statistical sampling, and STA slack.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/statistical.hpp"
#include "geom/drc.hpp"
#include "litho/process_window.hpp"
#include "netlist/bench_format.hpp"
#include "sta/sta.hpp"

namespace sva {
namespace {

const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

// ------------------------------------------------------------ BenchFormat

const char* kC17 = R"(
# c17 -- the classic 6-gate example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchFormat, ParsesC17) {
  const BoolNetwork net = parse_bench(kC17);
  EXPECT_EQ(net.outputs().size(), 2u);
  std::size_t inputs = 0;
  std::size_t nands = 0;
  for (const auto& n : net.nodes()) {
    if (n.op == BoolOp::Input) ++inputs;
    if (n.op == BoolOp::Nand) ++nands;
  }
  EXPECT_EQ(inputs, 5u);
  EXPECT_EQ(nands, 6u);
}

TEST(BenchFormat, LoadsAndTimesC17) {
  const Netlist nl = load_bench(kC17, flow().library(), "c17");
  nl.validate();
  EXPECT_EQ(nl.primary_input_count(), 5u);
  EXPECT_EQ(nl.primary_output_count(), 2u);
  const Placement p = flow().make_placement(nl);
  const CircuitAnalysis a = flow().analyze(nl, p);
  EXPECT_GT(a.trad_nom_ps, 0.0);
  EXPECT_GT(a.uncertainty_reduction(), 0.0);
}

TEST(BenchFormat, OutOfOrderDefinitionsResolve) {
  const char* text = R"(
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = AND(a, a)
)";
  const BoolNetwork net = parse_bench(text);
  EXPECT_EQ(net.outputs().size(), 1u);
}

TEST(BenchFormat, SupportsAllGateTypes) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
g1 = AND(a, b)
g2 = OR(b, c)
g3 = NAND(a, c)
g4 = NOR(g1, g2)
g5 = XOR(g3, g4)
g6 = XNOR(g5, a)
g7 = BUFF(g6)
z = NOT(g7)
)";
  EXPECT_NO_THROW(parse_bench(text));
  const Netlist nl = load_bench(text, flow().library(), "all_ops");
  EXPECT_NO_THROW(nl.validate());
}

TEST(BenchFormat, RejectsSequential) {
  const char* text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
  EXPECT_THROW(parse_bench(text), Error);
}

TEST(BenchFormat, RejectsUndefinedSignal) {
  const char* text = "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n";
  EXPECT_THROW(parse_bench(text), Error);
}

TEST(BenchFormat, RejectsDoubleDriver) {
  const char* text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\nz = OR(a, b)\n";
  EXPECT_THROW(parse_bench(text), Error);
}

TEST(BenchFormat, RejectsCycle) {
  const char* text =
      "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n";
  EXPECT_THROW(parse_bench(text), Error);
}

TEST(BenchFormat, RejectsMissingDeclarations) {
  EXPECT_THROW(parse_bench("OUTPUT(z)\nz = AND(a, b)\n"), Error);
  EXPECT_THROW(parse_bench("INPUT(a)\n"), Error);
}

// ------------------------------------------------------------------- DRC

TEST(Drc, CleanLayoutPasses) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::Poly, Rect::make(250, 0, 340, 1000));
  EXPECT_TRUE(check_poly(layout).empty());
}

TEST(Drc, CatchesNarrowPoly) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 40, 1000));
  const auto v = check_poly(layout);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, DrcViolationKind::Width);
  EXPECT_DOUBLE_EQ(v[0].measured, 40.0);
  EXPECT_FALSE(v[0].describe().empty());
}

TEST(Drc, CatchesTightSpacing) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 1000));
  layout.add(Layer::Poly, Rect::make(150, 0, 240, 1000));  // 60 nm space
  const auto v = check_poly(layout);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, DrcViolationKind::Spacing);
  EXPECT_DOUBLE_EQ(v[0].measured, 60.0);
}

TEST(Drc, IgnoresVerticallyDisjointSpacing) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(0, 0, 90, 400));
  layout.add(Layer::Poly, Rect::make(150, 600, 240, 1000));
  EXPECT_TRUE(check_poly(layout).empty());
}

TEST(Drc, LibraryMastersAreClean) {
  for (const CellMaster& m : flow().library().masters()) {
    const auto v = check_poly(m.layout());
    EXPECT_TRUE(v.empty()) << m.name() << ": "
                           << (v.empty() ? "" : v[0].describe());
    const auto b = check_boundary(m.layout(), m.width());
    EXPECT_TRUE(b.empty()) << m.name() << ": "
                           << (b.empty() ? "" : b[0].describe());
  }
}

TEST(Drc, PlacedRowsAreClean) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  for (std::size_t r = 0; r < p.rows().size(); ++r) {
    const Layout row = p.row_layout(r, nullptr);
    const auto v = check_poly(row);
    EXPECT_TRUE(v.empty()) << "row " << r << ": "
                           << (v.empty() ? "" : v[0].describe());
  }
}

TEST(Drc, BoundaryRuleCatchesEdgeHugger) {
  Layout layout;
  layout.add(Layer::Poly, Rect::make(10, 0, 100, 1000));
  const auto v = check_boundary(layout, 500.0);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0].measured, 10.0);
}

// --------------------------------------------------------- Process window

TEST(ProcessWindow, DenseHasWiderWindowThanIso) {
  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const auto fem = build_fem(proc, 90.0, {240.0, 1200.0},
                             defocus_sweep(300.0, 13),
                             {0.94, 0.97, 1.0, 1.03, 1.06});
  const ProcessWindow dense =
      compute_process_window(fem.entries[0], 90.0, 0.12);
  const ProcessWindow iso =
      compute_process_window(fem.entries[1], 90.0, 0.12);
  EXPECT_TRUE(dense.usable());
  // The dense pattern holds CD through focus far better than the
  // isolated one -- the asymmetry the paper's focus treatment encodes.
  EXPECT_GT(dense.dof_at_nominal_dose, iso.dof_at_nominal_dose);
}

TEST(ProcessWindow, ToleranceMonotonicity) {
  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const auto fem = build_fem(proc, 90.0, {240.0}, defocus_sweep(300.0, 13),
                             {0.96, 1.0, 1.04});
  const ProcessWindow tight =
      compute_process_window(fem.entries[0], 90.0, 0.05);
  const ProcessWindow loose =
      compute_process_window(fem.entries[0], 90.0, 0.20);
  EXPECT_LE(tight.dof_at_nominal_dose, loose.dof_at_nominal_dose);
  EXPECT_LE(tight.exposure_latitude, loose.exposure_latitude);
  EXPECT_LE(tight.best_window_defocus_span,
            loose.best_window_defocus_span);
}

TEST(ProcessWindow, UnprintableTargetGivesEmptyWindow) {
  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const auto fem = build_fem(proc, 90.0, {240.0}, defocus_sweep(200.0, 5),
                             {1.0});
  const ProcessWindow w =
      compute_process_window(fem.entries[0], 300.0, 0.05);
  EXPECT_FALSE(w.usable());
  EXPECT_DOUBLE_EQ(w.dof_at_nominal_dose, 0.0);
}

// --------------------------------------------------------------- AttPSM

TEST(AttPsm, TransmissionValue) {
  const auto t = MaskPattern1D::attenuated_psm_transmission(0.06);
  EXPECT_NEAR(std::abs(t), std::sqrt(0.06), 1e-12);
  EXPECT_NEAR(std::arg(t), 3.14159265358979, 1e-9);
}

TEST(AttPsm, WithTransmissionPreservesGeometry) {
  const auto binary = MaskPattern1D::grating(90.0, 300.0);
  const auto psm = binary.with_transmission(
      MaskPattern1D::attenuated_psm_transmission());
  ASSERT_EQ(psm.segments().size(), binary.segments().size());
  EXPECT_DOUBLE_EQ(psm.segments()[0].x_lo, binary.segments()[0].x_lo);
  EXPECT_NE(psm.segments()[0].transmission,
            binary.segments()[0].transmission);
}

TEST(AttPsm, ImprovesImageContrast) {
  // The textbook benefit of attenuated PSM: the phase-shifted background
  // light interferes destructively in the dark region, deepening the dip.
  const AerialImageSimulator sim(OpticsConfig{});
  const auto binary = MaskPattern1D::grating(90.0, 300.0);
  const auto psm = binary.with_transmission(
      MaskPattern1D::attenuated_psm_transmission());
  const auto img_b = sim.image(binary, 0.0);
  const auto img_p = sim.image(psm, 0.0);
  const double c_b = (img_b.sampled_max() - img_b.sampled_min()) /
                     (img_b.sampled_max() + img_b.sampled_min());
  const double c_p = (img_p.sampled_max() - img_p.sampled_min()) /
                     (img_p.sampled_max() + img_p.sampled_min());
  EXPECT_GT(c_p, c_b);
}

// -------------------------------------------------------- Spatial sampler

TEST(SpatialSampler, RegionsCoverPlacement) {
  const Netlist nl = flow().make_benchmark("C880");
  const Placement p = flow().make_placement(nl);
  const SpatialGaussianSampler sampler(p, flow().config().budget, 90.0,
                                       0.6, 20000.0);
  EXPECT_GE(sampler.region_count(), 2u);
}

TEST(SpatialSampler, NearbyGatesCorrelated) {
  const Netlist nl = flow().make_benchmark("C880");
  const Placement p = flow().make_placement(nl);
  // Pure regional variation isolates the correlation structure.
  const SpatialGaussianSampler sampler(p, flow().config().budget, 90.0,
                                       1.0, 20000.0);
  Rng rng(5);
  const auto factors = sampler.sample(rng);
  // Two gates in the same row, adjacent: same region (almost surely).
  const auto& row0 = p.rows()[0];
  ASSERT_GE(row0.size(), 2u);
  EXPECT_DOUBLE_EQ(factors[row0[0]][0], factors[row0[1]][0]);
}

TEST(SpatialSampler, DistributionComparableToNaive) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const SpatialGaussianSampler spatial(p, flow().config().budget, 90.0);
  const NaiveGaussianSampler naive(nl, flow().config().budget, 90.0);
  MonteCarloConfig mc;
  mc.samples = 300;
  const Summary s_spatial = run_monte_carlo(sta, spatial, mc).summary();
  const Summary s_naive = run_monte_carlo(sta, naive, mc).summary();
  // Same budget, similar means; spatial correlation mostly changes the
  // spread, not the location.
  EXPECT_NEAR(s_spatial.mean, s_naive.mean, 0.02 * s_naive.mean);
}

// ------------------------------------------------------------------ Slack

TEST(Slack, SlackMatchesCriticalDelay) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  const double period = 2500.0;
  const SlackResult r = sta.run_with_slack(scale, period);
  EXPECT_NEAR(r.worst_slack_ps, period - r.timing.critical_delay_ps, 1e-6);
  EXPECT_TRUE(r.meets_timing());
}

TEST(Slack, NegativeWhenClockTooFast) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  const SlackResult r = sta.run_with_slack(scale, 500.0);
  EXPECT_LT(r.worst_slack_ps, 0.0);
  EXPECT_FALSE(r.meets_timing());
}

TEST(Slack, SlackNonDecreasingAlongCriticalPath) {
  const Netlist nl = flow().make_benchmark("C880");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  const SlackResult r = sta.run_with_slack(scale, 3000.0);
  // Every net on the critical path carries the worst slack.
  for (std::size_t gi : r.timing.critical_path) {
    const std::size_t net = nl.gates()[gi].output_net;
    EXPECT_NEAR(r.slack_ps[net], r.worst_slack_ps, 1e-6);
  }
}

TEST(Slack, RequiredTimesDecreaseUpstream) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  const SlackResult r = sta.run_with_slack(scale, 2500.0);
  for (const GateInst& gate : nl.gates()) {
    if (r.required_ps[gate.output_net] >= 1e17) continue;
    for (std::size_t in : gate.fanin_nets) {
      if (r.required_ps[in] >= 1e17) continue;
      EXPECT_LT(r.required_ps[in], r.required_ps[gate.output_net]);
    }
  }
}

}  // namespace
}  // namespace sva
