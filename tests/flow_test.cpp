// Integration tests of the end-to-end SVA timing flow: the Table 2
// properties the paper reports must hold on our reproduction.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "core/flow.hpp"
#include "opc/pitch_table.hpp"

namespace sva {
namespace {

/// One flow shared by all tests in this file (construction runs library
/// OPC and pitch characterization).
const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

TEST(Flow, SetupArtifactsPresent) {
  EXPECT_EQ(flow().library().size(), 10u);
  EXPECT_EQ(flow().library_opc_results().size(), 10u);
  EXPECT_EQ(flow().pitch_points().size(),
            flow().config().table_spacings.size());
  EXPECT_GT(flow().setup_opc_seconds(), 0.0);
}

TEST(Flow, PitchTableShowsResidualBias) {
  // Post-OPC residual through-pitch variation must be present (it is what
  // the whole methodology exploits) and bounded (OPC works).
  const Nm half_range = post_opc_pitch_half_range(flow().pitch_points());
  EXPECT_GT(half_range, 0.5);
  EXPECT_LT(half_range, 0.10 * 90.0);
}

TEST(Flow, InteriorCdsPlausible) {
  for (std::size_t ci = 0; ci < flow().library().size(); ++ci) {
    const auto& r = flow().library_opc_results()[ci];
    for (Nm cd : r.device_cd) {
      EXPECT_GT(cd, 70.0);
      EXPECT_LT(cd, 110.0);
    }
  }
}

TEST(Flow, VersionBindingCoversMultipleVersions) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const auto versions = flow().bind_versions(p);
  ASSERT_EQ(versions.size(), nl.gates().size());
  std::set<std::size_t> distinct;
  for (const auto& v : versions) distinct.insert(version_index(v, 3));
  EXPECT_GE(distinct.size(), 5u);
}

TEST(Flow, Table2PropertiesOnC432) {
  const CircuitAnalysis a = flow().analyze_benchmark("C432");
  EXPECT_EQ(a.gate_count, 160u);

  // Corner ordering in both flows.
  EXPECT_LT(a.trad_bc_ps, a.trad_nom_ps);
  EXPECT_LT(a.trad_nom_ps, a.trad_wc_ps);
  EXPECT_LT(a.sva_bc_ps, a.sva_nom_ps);
  EXPECT_LT(a.sva_nom_ps, a.sva_wc_ps);

  // The headline result: spread shrinks, in the ballpark the paper
  // reports (28-40%; we accept a slightly wider acceptance band).
  EXPECT_GT(a.uncertainty_reduction(), 0.20);
  EXPECT_LT(a.uncertainty_reduction(), 0.55);

  // SVA corners are inside the traditional ones.
  EXPECT_LE(a.sva_wc_ps, a.trad_wc_ps);
  EXPECT_GE(a.sva_bc_ps, a.trad_bc_ps);
}

TEST(Flow, NominalImprovesBecauseMostDevicesPrintThin) {
  // Paper: "the nominal timing improves when through-pitch variation is
  // accounted for" (most devices are isolated and print below drawn CD).
  const CircuitAnalysis a = flow().analyze_benchmark("C432");
  EXPECT_LE(a.sva_nom_ps, a.trad_nom_ps * 1.01);
}

TEST(Flow, AllArcClassesOccur) {
  const CircuitAnalysis a = flow().analyze_benchmark("C880");
  ASSERT_EQ(a.arc_class_counts.size(), 3u);
  EXPECT_GT(a.arc_class_counts[0], 0u);  // smile
  EXPECT_GT(a.arc_class_counts[1], 0u);  // frown
  EXPECT_GT(a.arc_class_counts[2], 0u);  // self-compensated
}

TEST(Flow, AnalysisDeterministic) {
  const CircuitAnalysis a = flow().analyze_benchmark("C432");
  const CircuitAnalysis b = flow().analyze_benchmark("C432");
  EXPECT_DOUBLE_EQ(a.sva_wc_ps, b.sva_wc_ps);
  EXPECT_DOUBLE_EQ(a.trad_wc_ps, b.trad_wc_ps);
}

TEST(Flow, ZeroSystematicSharesKeepCornersClose) {
  // Budget ablation: with no systematic shares, the only SVA effect left
  // is the context-aware nominal shift; the spread reduction collapses.
  FlowConfig config;
  config.budget.pitch_share = 0.0;
  config.budget.focus_share = 0.0;
  const SvaFlow no_trim{config};
  const CircuitAnalysis a = no_trim.analyze_benchmark("C432");
  EXPECT_LT(a.uncertainty_reduction(), 0.10);
}

TEST(Flow, ConservativePolicyReducesLessOrEqual) {
  FlowConfig conservative;
  conservative.arc_policy = ArcLabelPolicy::Conservative;
  const SvaFlow f2{conservative};
  const CircuitAnalysis a = flow().analyze_benchmark("C432");
  const CircuitAnalysis b = f2.analyze_benchmark("C432");
  // Conservative labeling gives more self-compensated arcs.  SC arcs trim
  // focus on both sides, so the spread cannot grow.
  EXPECT_LE(b.sva_spread_ps(), a.sva_spread_ps() * 1.05);
}

// Property: Table 2 invariants hold across several benchmark sizes.
class BenchmarkSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSweep, SpreadReductionInBand) {
  const CircuitAnalysis a = flow().analyze_benchmark(GetParam());
  EXPECT_GT(a.uncertainty_reduction(), 0.15) << GetParam();
  EXPECT_LT(a.uncertainty_reduction(), 0.60) << GetParam();
  EXPECT_LE(a.sva_wc_ps, a.trad_wc_ps);
  EXPECT_GE(a.sva_bc_ps, a.trad_bc_ps);
}

INSTANTIATE_TEST_SUITE_P(Table2, BenchmarkSweep,
                         ::testing::Values("C432", "C880", "C1355"));

// ------------------------------------------- persistent warm start

TEST(FlowCache, WarmStartIsBitIdenticalToCold) {
  const std::string dir = ::testing::TempDir() + "sva_flow_cache";
  std::filesystem::remove_all(dir);
  FlowConfig config;
  config.cache_dir = dir;

  // Cold run: computes the setup products and snapshots them (plus the
  // context-cache slots it touches).
  const SvaFlow cold{config};
  EXPECT_FALSE(cold.setup_from_cache());
  const CircuitAnalysis a = cold.analyze_benchmark("C432");
  cold.save_context_cache(dir);

  // Warm run: everything restored from disk.
  const SvaFlow warm{config};
  EXPECT_TRUE(warm.setup_from_cache());
  EXPECT_TRUE(warm.try_load_context_cache(dir));
  EXPECT_GT(warm.context_cache().stats().disk_hits, 0u);

  // The restored products are the exact bytes the cold run computed...
  ASSERT_EQ(warm.library_opc_results().size(),
            cold.library_opc_results().size());
  for (std::size_t ci = 0; ci < cold.library_opc_results().size(); ++ci) {
    EXPECT_EQ(warm.library_opc_results()[ci].device_cd,
              cold.library_opc_results()[ci].device_cd);
    EXPECT_EQ(warm.library_opc_results()[ci].device_mask_width,
              cold.library_opc_results()[ci].device_mask_width);
  }
  ASSERT_EQ(warm.pitch_points().size(), cold.pitch_points().size());
  for (std::size_t i = 0; i < cold.pitch_points().size(); ++i)
    EXPECT_EQ(warm.pitch_points()[i].printed_cd,
              cold.pitch_points()[i].printed_cd);

  // ...so the full analysis is bit-identical, not merely close.
  const CircuitAnalysis b = warm.analyze_benchmark("C432");
  EXPECT_EQ(a.trad_nom_ps, b.trad_nom_ps);
  EXPECT_EQ(a.trad_bc_ps, b.trad_bc_ps);
  EXPECT_EQ(a.trad_wc_ps, b.trad_wc_ps);
  EXPECT_EQ(a.sva_nom_ps, b.sva_nom_ps);
  EXPECT_EQ(a.sva_bc_ps, b.sva_bc_ps);
  EXPECT_EQ(a.sva_wc_ps, b.sva_wc_ps);
  EXPECT_EQ(a.arc_class_counts, b.arc_class_counts);
}

TEST(FlowCache, CorruptSetupSnapshotFallsBackToColdComputation) {
  const std::string dir = ::testing::TempDir() + "sva_flow_cache_corrupt";
  std::filesystem::remove_all(dir);
  FlowConfig config;
  config.cache_dir = dir;

  const SvaFlow seed{config};
  const std::string path = seed.setup_cache_file_path(dir);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a snapshot";
  }
  const SvaFlow recovered{config};
  EXPECT_FALSE(recovered.setup_from_cache());
  // The cold recomputation overwrote the mangled file with a good one.
  const SvaFlow warm{config};
  EXPECT_TRUE(warm.setup_from_cache());
  for (std::size_t i = 0; i < seed.pitch_points().size(); ++i)
    EXPECT_EQ(warm.pitch_points()[i].printed_cd,
              seed.pitch_points()[i].printed_cd);
}

TEST(FlowCache, StaleSnapshotIsIgnoredAcrossConfigs) {
  const std::string dir = ::testing::TempDir() + "sva_flow_cache_stale";
  std::filesystem::remove_all(dir);
  FlowConfig config;
  config.cache_dir = dir;
  const SvaFlow base{config};

  // A different OPC budget keys a different snapshot file, so the two
  // configurations never cross-contaminate.
  FlowConfig other = config;
  other.opc.max_iterations += 1;
  const SvaFlow changed{other};
  EXPECT_FALSE(changed.setup_from_cache());
  EXPECT_NE(base.setup_content_hash(), changed.setup_content_hash());
  EXPECT_NE(base.setup_cache_file_path(dir),
            changed.setup_cache_file_path(dir));

  // Each configuration warm-starts from its own snapshot.
  EXPECT_TRUE(SvaFlow{config}.setup_from_cache());
  EXPECT_TRUE(SvaFlow{other}.setup_from_cache());
}

}  // namespace
}  // namespace sva
