// Tests for the litho module: source sampling, mask Fourier analysis,
// aerial imaging invariants, resist calibration, CD models, pitch curves,
// Bossung/FEM behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "litho/aerial.hpp"
#include "litho/bossung.hpp"
#include "litho/cd_model.hpp"
#include "litho/focus_response.hpp"
#include "litho/mask1d.hpp"
#include "litho/optics.hpp"
#include "litho/pitch_curve.hpp"
#include "litho/resist.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

OpticsConfig default_optics() { return OpticsConfig{}; }

// ---------------------------------------------------------------- Optics

TEST(Optics, SourceWeightsNormalized) {
  const auto pts = sample_annular_source(default_optics());
  EXPECT_FALSE(pts.empty());
  double total = 0.0;
  for (const auto& p : pts) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Optics, SourcePointsInsideAnnulus) {
  const OpticsConfig o = default_optics();
  for (const auto& p : sample_annular_source(o)) {
    const double r = std::hypot(p.sx, p.sy);
    EXPECT_GE(r, o.sigma_inner - 1e-9);
    EXPECT_LE(r, o.sigma_outer + 1e-9);
    EXPECT_GT(p.weight, 0.0);
  }
}

TEST(Optics, ValidateRejectsBadConfigs) {
  OpticsConfig o = default_optics();
  o.na = 1.5;
  EXPECT_THROW(validate(o), PreconditionError);
  o = default_optics();
  o.sigma_inner = 0.9;
  o.sigma_outer = 0.5;
  EXPECT_THROW(validate(o), PreconditionError);
  o = default_optics();
  o.source_radial = 0;
  EXPECT_THROW(validate(o), PreconditionError);
  o = default_optics();
  o.wavelength = -1.0;
  EXPECT_THROW(validate(o), PreconditionError);
}

TEST(Optics, MaxFrequency) {
  OpticsConfig o = default_optics();
  EXPECT_NEAR(o.max_frequency(), (1.0 + o.sigma_outer) * o.na / o.wavelength,
              1e-15);
}

// ---------------------------------------------------------------- Mask

TEST(Mask1D, ZeroOrderEqualsMeanTransmission) {
  const auto m = MaskPattern1D::grating(90.0, 240.0);
  // Opaque 90 of 240 => c0 = 150/240.
  EXPECT_NEAR(m.fourier_coefficient(0).real(), 150.0 / 240.0, 1e-12);
  EXPECT_NEAR(m.fourier_coefficient(0).imag(), 0.0, 1e-12);
}

TEST(Mask1D, ClearFraction) {
  const auto m = MaskPattern1D::grating(90.0, 240.0);
  EXPECT_NEAR(m.clear_fraction(), 150.0 / 240.0, 1e-12);
}

TEST(Mask1D, CoefficientsConjugateSymmetric) {
  const auto m = MaskPattern1D::local_context(90.0, {{200.0, 90.0}},
                                              {{350.0, 130.0}}, 3000.0);
  for (int n = 1; n <= 12; ++n) {
    const auto cp = m.fourier_coefficient(n);
    const auto cm = m.fourier_coefficient(-n);
    // Real-valued transmission => c_{-n} = conj(c_n).
    EXPECT_NEAR(cp.real(), cm.real(), 1e-12);
    EXPECT_NEAR(cp.imag(), -cm.imag(), 1e-12);
  }
}

TEST(Mask1D, FourierSeriesReconstructsTransmission) {
  const auto m = MaskPattern1D::grating(130.0, 520.0);
  // Partial sum of the series should approach the transmission away from
  // edges.
  auto reconstruct = [&](double x) {
    std::complex<double> v = m.fourier_coefficient(0);
    for (int n = 1; n <= 200; ++n) {
      const double phase = 2.0 * M_PI * n * x / m.period();
      v += m.fourier_coefficient(n) *
               std::complex<double>(std::cos(phase), std::sin(phase)) +
           m.fourier_coefficient(-n) *
               std::complex<double>(std::cos(phase), -std::sin(phase));
    }
    return v.real();
  };
  EXPECT_NEAR(reconstruct(m.period() / 2.0), 0.0, 0.05);  // line centre
  EXPECT_NEAR(reconstruct(10.0), 1.0, 0.05);              // clear area
}

TEST(Mask1D, TransmissionAt) {
  const auto m = MaskPattern1D::grating(90.0, 240.0);
  EXPECT_EQ(m.transmission_at(120.0), std::complex<double>(0.0));
  EXPECT_EQ(m.transmission_at(10.0), std::complex<double>(1.0));
  // Periodic wrap-around.
  EXPECT_EQ(m.transmission_at(120.0 + 240.0), std::complex<double>(0.0));
  EXPECT_EQ(m.transmission_at(-120.0), std::complex<double>(0.0));
}

TEST(Mask1D, LocalContextGeometry) {
  const auto m = MaskPattern1D::local_context(
      90.0, {{150.0, 90.0}, {200.0, 130.0}}, {{300.0, 90.0}}, 3000.0);
  EXPECT_EQ(m.segments().size(), 4u);
  const std::size_t c = m.center_segment_index();
  EXPECT_NEAR(m.segments()[c].x_lo, 1500.0 - 45.0, 1e-9);
  EXPECT_NEAR(m.segments()[c].x_hi, 1500.0 + 45.0, 1e-9);
}

TEST(Mask1D, RejectsOverlapsAndBadPeriods) {
  EXPECT_THROW(MaskPattern1D(100.0, {{10.0, 50.0, 0.0}, {40.0, 80.0, 0.0}}),
               PreconditionError);
  EXPECT_THROW(MaskPattern1D(-1.0, {}), PreconditionError);
  EXPECT_THROW(MaskPattern1D::grating(100.0, 90.0), PreconditionError);
}

TEST(Mask1D, AttenuatedPsmTransmission) {
  // Segments may carry complex transmission (attenuated PSM support).
  const std::complex<double> att = std::polar(std::sqrt(0.06), M_PI);
  MaskPattern1D m(240.0, {{75.0, 165.0, att}});
  EXPECT_EQ(m.transmission_at(120.0), att);
  // c0 = 1 + (att - 1) * duty.
  const auto c0 = m.fourier_coefficient(0);
  EXPECT_NEAR(c0.real(), 1.0 + (att.real() - 1.0) * 90.0 / 240.0, 1e-12);
}

// ---------------------------------------------------------------- Aerial

TEST(Aerial, ClearMaskImagesToUnity) {
  const AerialImageSimulator sim(default_optics());
  const MaskPattern1D clear(1000.0, {});
  const auto img = sim.image(clear, 0.0);
  for (double v : img.sample(64)) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Aerial, IntensityNonNegative) {
  const AerialImageSimulator sim(default_optics());
  const auto img = sim.image(MaskPattern1D::grating(90.0, 240.0), 150.0);
  for (double v : img.sample(256)) EXPECT_GE(v, 0.0);
}

TEST(Aerial, SymmetricMaskGivesSymmetricImage) {
  const AerialImageSimulator sim(default_optics());
  const auto mask = MaskPattern1D::grating(130.0, 520.0);
  const auto img = sim.image(mask, 0.0);
  const double c = mask.period() / 2.0;
  for (double dx : {10.0, 40.0, 100.0, 200.0})
    EXPECT_NEAR(img.intensity(c - dx), img.intensity(c + dx), 1e-9);
}

TEST(Aerial, DefocusReducesContrast) {
  const AerialImageSimulator sim(default_optics());
  const auto mask = MaskPattern1D::grating(90.0, 240.0);
  const auto focused = sim.image(mask, 0.0);
  const auto blurred = sim.image(mask, 250.0);
  const double c0 = focused.sampled_max() - focused.sampled_min();
  const double c1 = blurred.sampled_max() - blurred.sampled_min();
  EXPECT_LT(c1, c0);
}

TEST(Aerial, DefocusSignSymmetric) {
  // Scalar defocus is symmetric in +-dz for an aberration-free pupil.
  const AerialImageSimulator sim(default_optics());
  const auto mask = MaskPattern1D::grating(90.0, 300.0);
  const auto plus = sim.image(mask, 180.0);
  const auto minus = sim.image(mask, -180.0);
  for (std::size_t i = 0; i < 32; ++i) {
    const double x = mask.period() * static_cast<double>(i) / 32.0;
    EXPECT_NEAR(plus.intensity(x), minus.intensity(x), 1e-9);
  }
}

TEST(Aerial, TccCacheReused) {
  const AerialImageSimulator sim(default_optics());
  const auto m1 = MaskPattern1D::grating(90.0, 240.0);
  const auto m2 = MaskPattern1D::grating(110.0, 240.0);
  (void)sim.image(m1, 0.0);
  EXPECT_EQ(sim.tcc_cache_size(), 1u);
  (void)sim.image(m2, 0.0);  // same (period, defocus) => cache hit
  EXPECT_EQ(sim.tcc_cache_size(), 1u);
  (void)sim.image(m1, 100.0);
  EXPECT_EQ(sim.tcc_cache_size(), 2u);
  EXPECT_EQ(sim.images_computed(), 3u);
}

TEST(Aerial, MeanIntensityMatchesSampleAverage) {
  const AerialImageSimulator sim(default_optics());
  const auto img = sim.image(MaskPattern1D::grating(90.0, 360.0), 0.0);
  const auto s = img.sample(512);
  double avg = 0.0;
  for (double v : s) avg += v;
  avg /= static_cast<double>(s.size());
  EXPECT_NEAR(avg, img.mean_intensity(), 1e-3);
}

TEST(Aerial, ResistBlurSmoothsImage) {
  OpticsConfig sharp = default_optics();
  sharp.resist_diffusion_length = 0.0;
  OpticsConfig soft = default_optics();
  soft.resist_diffusion_length = 60.0;
  const auto mask = MaskPattern1D::grating(90.0, 240.0);
  const auto i_sharp = AerialImageSimulator(sharp).image(mask, 0.0);
  const auto i_soft = AerialImageSimulator(soft).image(mask, 0.0);
  EXPECT_LT(i_soft.sampled_max() - i_soft.sampled_min(),
            i_sharp.sampled_max() - i_sharp.sampled_min());
}

// ---------------------------------------------------------------- Resist

TEST(Resist, CalibrationPrintsAnchorAtTarget) {
  const AerialImageSimulator sim(default_optics());
  const auto anchor = MaskPattern1D::grating(90.0, 240.0);
  const auto resist = ThresholdResist::calibrate(sim, anchor, 90.0);
  const auto cd =
      resist.printed_cd(sim.image(anchor, 0.0), anchor.period() / 2.0);
  ASSERT_TRUE(cd.has_value());
  EXPECT_NEAR(*cd, 90.0, 0.5);
}

TEST(Resist, CdGrowsWithThreshold) {
  const AerialImageSimulator sim(default_optics());
  const auto mask = MaskPattern1D::grating(90.0, 300.0);
  const auto img = sim.image(mask, 0.0);
  double prev = 0.0;
  for (double th : {0.38, 0.44, 0.5}) {
    const auto cd = ThresholdResist(th).printed_cd(img, 150.0);
    ASSERT_TRUE(cd.has_value());
    EXPECT_GT(*cd, prev);
    prev = *cd;
  }
}

TEST(Resist, HigherDoseThinsLines) {
  const AerialImageSimulator sim(default_optics());
  const auto mask = MaskPattern1D::grating(90.0, 300.0);
  const auto img = sim.image(mask, 0.0);
  const ThresholdResist resist(0.4);
  const auto lo = resist.printed_cd(img, 150.0, 0.9);
  const auto hi = resist.printed_cd(img, 150.0, 1.1);
  ASSERT_TRUE(lo && hi);
  EXPECT_GT(*lo, *hi);
}

TEST(Resist, FailureWhenCenterBright) {
  const AerialImageSimulator sim(default_optics());
  const MaskPattern1D clear(1000.0, {});
  const auto img = sim.image(clear, 0.0);
  EXPECT_FALSE(ThresholdResist(0.4).printed_line(img, 500.0).has_value());
}

TEST(Resist, PrintedLineEdgesBracketCenter) {
  const AerialImageSimulator sim(default_optics());
  const auto mask = MaskPattern1D::grating(130.0, 400.0);
  const auto img = sim.image(mask, 0.0);
  const auto line = ThresholdResist(0.4).printed_line(img, 200.0);
  ASSERT_TRUE(line.has_value());
  EXPECT_LT(line->left, 200.0);
  EXPECT_GT(line->right, 200.0);
  EXPECT_GT(line->cd(), 0.0);
}

TEST(Resist, RejectsNonPositiveThreshold) {
  EXPECT_THROW(ThresholdResist(0.0), PreconditionError);
  EXPECT_THROW(ThresholdResist(-1.0), PreconditionError);
}

// --------------------------------------------------------------- CdModels

TEST(LithoProcess, IsoPrintsThinnerThanDense) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const auto dense = proc.printed_cd(MaskPattern1D::grating(90.0, 240.0));
  const auto iso = proc.printed_cd(MaskPattern1D::grating(90.0, 2000.0));
  ASSERT_TRUE(dense && iso);
  EXPECT_GT(*dense, *iso);
}

TEST(LithoProcess, ContextHelperMatchesExplicitPattern) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const auto via_helper =
      proc.printed_cd_in_context(90.0, {{150.0, 90.0}}, {{150.0, 90.0}});
  const auto explicit_mask = MaskPattern1D::local_context(
      90.0, {{150.0, 90.0}}, {{150.0, 90.0}}, LithoProcess::kSupercellPeriod);
  const auto direct = proc.printed_cd(explicit_mask);
  ASSERT_TRUE(via_helper && direct);
  EXPECT_NEAR(*via_helper, *direct, 1e-9);
}

TEST(SimulatedCdModel, ClampsBeyondRoi) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const SimulatedCdModel model(proc, 600.0);
  const Nm at_roi = model.printed_cd_nominal(90.0, 600.0, 600.0);
  const Nm beyond = model.printed_cd_nominal(90.0, 5000.0, 5000.0);
  EXPECT_NEAR(at_roi, beyond, 1e-9);
}

TEST(SimulatedCdModel, DenseLargerThanIso) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const SimulatedCdModel model(proc, 600.0);
  EXPECT_GT(model.printed_cd_nominal(90.0, 150.0, 150.0),
            model.printed_cd_nominal(90.0, 600.0, 600.0));
}

TEST(TableCdModel, SymmetricLookupMatchesTable) {
  LookupTable1D table({150.0, 300.0, 600.0}, {95.0, 90.0, 85.0});
  const TableCdModel model(90.0, table, 600.0);
  EXPECT_NEAR(model.printed_cd_nominal(90.0, 150.0, 150.0), 95.0, 1e-9);
  EXPECT_NEAR(model.printed_cd_nominal(90.0, 600.0, 600.0), 85.0, 1e-9);
}

TEST(TableCdModel, AsymmetricAveragesSides) {
  LookupTable1D table({150.0, 600.0}, {95.0, 85.0});
  const TableCdModel model(90.0, table, 600.0);
  // delta(150) = +5, delta(600) = -5 => half sum = 0.
  EXPECT_NEAR(model.printed_cd_nominal(90.0, 150.0, 600.0), 90.0, 1e-9);
}

TEST(TableCdModel, ScalesWithDrawnWidth) {
  LookupTable1D table({150.0, 600.0}, {99.0, 81.0});
  const TableCdModel model(90.0, table, 600.0);
  const Nm cd90 = model.printed_cd_nominal(90.0, 150.0, 150.0);
  const Nm cd180 = model.printed_cd_nominal(180.0, 150.0, 150.0);
  EXPECT_NEAR((cd90 - 90.0) / 90.0, (cd180 - 180.0) / 180.0, 1e-9);
}

TEST(EmpiricalCdModel, SideCharacterEndpoints) {
  const EmpiricalCdModel model(EmpiricalCdParams{});
  EXPECT_NEAR(model.side_character(100.0), 1.0, 1e-12);
  EXPECT_NEAR(model.side_character(150.0), 1.0, 1e-12);
  EXPECT_NEAR(model.side_character(600.0), -1.0, 1e-12);
  EXPECT_NEAR(model.side_character(1000.0), -1.0, 1e-12);
  EXPECT_NEAR(model.side_character(375.0), 0.0, 1e-12);
}

TEST(EmpiricalCdModel, IsoDenseBiasSign) {
  const EmpiricalCdModel model(EmpiricalCdParams{});
  EXPECT_GT(model.printed_cd_nominal(90.0, 150.0, 150.0),
            model.printed_cd_nominal(90.0, 600.0, 600.0));
}

TEST(EmpiricalCdModel, SmileFrownSigns) {
  const EmpiricalCdModel model(EmpiricalCdParams{});
  // Dense: CD grows with defocus (smile).
  EXPECT_GT(model.printed_cd(90.0, 150.0, 150.0, 300.0, 1.0),
            model.printed_cd(90.0, 150.0, 150.0, 0.0, 1.0));
  // Iso: CD shrinks (frown).
  EXPECT_LT(model.printed_cd(90.0, 600.0, 600.0, 300.0, 1.0),
            model.printed_cd(90.0, 600.0, 600.0, 0.0, 1.0));
}

TEST(EmpiricalCdModel, DoseSlopeSign) {
  const EmpiricalCdModel model(EmpiricalCdParams{});
  EXPECT_LT(model.printed_cd(90.0, 300.0, 300.0, 0.0, 1.1),
            model.printed_cd(90.0, 300.0, 300.0, 0.0, 0.9));
}

// ----------------------------------------------------------- Pitch curve

TEST(PitchCurve, Fig1ShapeDecreasesToRoi) {
  const LithoProcess proc(default_optics(), 130.0, 300.0);
  const auto curve = through_pitch_curve(
      proc, 130.0, {300.0, 400.0, 500.0, 600.0});
  for (const auto& p : curve) EXPECT_GT(p.cd, 0.0);
  // Monotone decrease from dense to the radius of influence.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LT(curve[i].cd, curve[i - 1].cd);
}

TEST(PitchCurve, FlatBeyondRoi) {
  const LithoProcess proc(default_optics(), 130.0, 300.0);
  const auto curve =
      through_pitch_curve(proc, 130.0, {800.0, 1000.0, 1300.0});
  // Beyond the radius of influence the CD varies by only a few nm.
  Nm lo = curve[0].cd, hi = curve[0].cd;
  for (const auto& p : curve) {
    lo = std::min(lo, p.cd);
    hi = std::max(hi, p.cd);
  }
  EXPECT_LT(hi - lo, 6.0);
}

TEST(PitchCurve, SweepAndHalfRange) {
  const auto pitches = pitch_sweep(300.0, 600.0, 4);
  ASSERT_EQ(pitches.size(), 4u);
  EXPECT_DOUBLE_EQ(pitches.front(), 300.0);
  EXPECT_DOUBLE_EQ(pitches.back(), 600.0);
  EXPECT_DOUBLE_EQ(pitches[1], 400.0);

  std::vector<PitchCdPoint> pts = {{300.0, 130.0}, {600.0, 110.0}};
  EXPECT_DOUBLE_EQ(pitch_cd_half_range(pts), 10.0);
}

TEST(PitchCurve, SpacingTableConversion) {
  std::vector<PitchCdPoint> pts = {{240.0, 95.0}, {690.0, 85.0}};
  const auto table = spacing_cd_table(pts, 90.0);
  EXPECT_DOUBLE_EQ(table.axis().front(), 150.0);
  EXPECT_DOUBLE_EQ(table.axis().back(), 600.0);
  EXPECT_DOUBLE_EQ(table.at(150.0), 95.0);
}

TEST(PitchCurve, SpacingTableRejectsFailures) {
  std::vector<PitchCdPoint> pts = {{240.0, 95.0}, {690.0, 0.0}};
  EXPECT_THROW(spacing_cd_table(pts, 90.0), PreconditionError);
}

// ------------------------------------------------------- Focus response

TEST(FocusResponse, CharacterBlendsSides) {
  const FocusResponse fr(FocusResponseParams{});
  EXPECT_NEAR(fr.line_character(150.0, 150.0), 1.0, 1e-12);
  EXPECT_NEAR(fr.line_character(600.0, 600.0), -1.0, 1e-12);
  EXPECT_NEAR(fr.line_character(150.0, 600.0), 0.0, 1e-12);
}

TEST(FocusResponse, QuadraticInDefocus) {
  const FocusResponse fr(FocusResponseParams{});
  const Nm d1 = fr.delta_cd(90.0, 150.0, 150.0, 150.0, 1.0);
  const Nm d2 = fr.delta_cd(90.0, 150.0, 150.0, 300.0, 1.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
  // Symmetric in sign of defocus.
  EXPECT_NEAR(fr.delta_cd(90.0, 150.0, 150.0, -300.0, 1.0), d2, 1e-12);
}

TEST(FocusResponse, SmileFrownAmplitudes) {
  FocusResponseParams p;
  const FocusResponse fr(p);
  const Nm smile = fr.delta_cd(90.0, 150.0, 150.0, 300.0, 1.0);
  const Nm frown = fr.delta_cd(90.0, 600.0, 600.0, 300.0, 1.0);
  EXPECT_NEAR(smile, 90.0 * p.smile_gain, 1e-9);
  EXPECT_NEAR(frown, -90.0 * p.frown_gain, 1e-9);
}

TEST(PrintModel, ComposesNominalAndFocus) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const PrintModel model(proc, FocusResponseParams{}, 600.0);
  const Nm nominal = model.printed_cd(90.0, 150.0, 150.0, 0.0, 1.0);
  const Nm defocused = model.printed_cd(90.0, 150.0, 150.0, 300.0, 1.0);
  EXPECT_GT(defocused, nominal);  // dense smiles
  const Nm iso0 = model.printed_cd(90.0, 600.0, 600.0, 0.0, 1.0);
  const Nm iso3 = model.printed_cd(90.0, 600.0, 600.0, 300.0, 1.0);
  EXPECT_LT(iso3, iso0);  // iso frowns
}

// ------------------------------------------------------------- Bossung

TEST(Bossung, FamilyShapesAndCurvature) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const PrintModel model(proc, FocusResponseParams{}, 600.0);
  // Build Bossung curves through the PrintModel-style evaluation.
  const auto axis = defocus_sweep(300.0, 7);
  BossungCurve dense;
  dense.pitch = 240.0;
  dense.defocus = axis;
  BossungCurve iso;
  iso.pitch = 2000.0;
  iso.defocus = axis;
  for (Nm dz : axis) {
    dense.cd.push_back(model.printed_cd(90.0, 150.0, 150.0, dz, 1.0));
    iso.cd.push_back(model.printed_cd(90.0, 1910.0, 1910.0, dz, 1.0));
  }
  EXPECT_GT(bossung_curvature(dense), 0.0);  // smile
  EXPECT_LT(bossung_curvature(iso), 0.0);    // frown
}

TEST(Bossung, DefocusSweepSymmetric) {
  const auto axis = defocus_sweep(300.0, 7);
  ASSERT_EQ(axis.size(), 7u);
  EXPECT_DOUBLE_EQ(axis.front(), -300.0);
  EXPECT_DOUBLE_EQ(axis.back(), 300.0);
  EXPECT_DOUBLE_EQ(axis[3], 0.0);
}

TEST(Bossung, RawSimulationFamily) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const auto family = bossung_family(proc, 90.0, 240.0,
                                     defocus_sweep(200.0, 5), {0.95, 1.05});
  ASSERT_EQ(family.size(), 2u);
  for (const auto& curve : family) {
    EXPECT_EQ(curve.cd.size(), 5u);
    // Lower dose prints wider lines at every defocus.
  }
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_GT(family[0].cd[i], family[1].cd[i]);
}

TEST(Bossung, FemHalfRangePositive) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const auto fem = build_fem(proc, 90.0, {240.0, 400.0},
                             defocus_sweep(200.0, 5), {1.0});
  ASSERT_EQ(fem.entries.size(), 2u);
  EXPECT_GT(fem.focus_half_range(), 0.0);
}

TEST(Bossung, FemEntryIndexing) {
  const LithoProcess proc(default_optics(), 90.0, 240.0);
  const auto fem =
      build_fem(proc, 90.0, {240.0}, defocus_sweep(200.0, 3), {0.9, 1.1});
  const auto& e = fem.entries[0];
  EXPECT_EQ(e.cd.size(), 6u);
  // Best focus, low dose prints wider than high dose.
  EXPECT_GT(e.cd_at(1, 0), e.cd_at(1, 1));
}

// Property sweep: through-pitch CD at nominal focus decreases
// monotonically across the paper's 300..600 nm window for several
// linewidths.
class PitchMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PitchMonotone, DecreasingInWindow) {
  const double lw = GetParam();
  const LithoProcess proc(default_optics(), lw, lw + 170.0);
  const auto curve = through_pitch_curve(
      proc, lw, {lw + 170.0, lw + 270.0, lw + 370.0, lw + 470.0});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LT(curve[i].cd, curve[i - 1].cd + 1.0)
        << "linewidth " << lw << " index " << i;
}

INSTANTIATE_TEST_SUITE_P(Linewidths, PitchMonotone,
                         ::testing::Values(90.0, 110.0, 130.0));

}  // namespace
}  // namespace sva
