// Tests for the sta module: load computation, arrival/slew propagation,
// critical paths, and scale-provider semantics, including hand-computed
// delays on a tiny netlist.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/thread_pool.hpp"
#include "netlist/iscas85.hpp"
#include "sta/scale.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sva {
namespace {

const CellLibrary& lib() {
  static const CellLibrary library = build_standard_library();
  return library;
}

const CharacterizedLibrary& charlib() {
  static const CharacterizedLibrary cl = characterize_library(lib());
  return cl;
}

/// pi -> INV -> INV -> PO chain.
Netlist inv_chain(std::size_t length) {
  Netlist nl(lib(), "chain");
  std::size_t net = nl.add_primary_input("pi");
  for (std::size_t i = 0; i < length; ++i)
    net = nl.add_gate("u" + std::to_string(i), lib().index_of("INV_X1"),
                      {net});
  nl.mark_primary_output(net);
  return nl;
}

TEST(Sta, NetLoadMatchesHandComputation) {
  const Netlist nl = inv_chain(2);
  StaConfig config;
  const Sta sta(nl, charlib(), config);
  // Net 1 (output of u0) drives u1's pin A plus wire cap for one sink.
  const double pin_cap = charlib().cells[lib().index_of("INV_X1")]
                             .master.pin("A")
                             .input_cap_ff;
  EXPECT_NEAR(sta.net_load_ff(1), pin_cap + config.wire_cap_per_sink_ff,
              1e-12);
  // Final net: PO load only (no sinks).
  EXPECT_NEAR(sta.net_load_ff(2), config.po_load_ff, 1e-12);
}

TEST(Sta, ChainDelayMatchesHandComputation) {
  const Netlist nl = inv_chain(1);
  StaConfig config;
  config.wire_delay_per_sink_ps = 0.0;
  const Sta sta(nl, charlib(), config);
  const StaResult r = sta.run(UnitScale{});

  const auto& arc = charlib().cells[lib().index_of("INV_X1")].arc_for("A");
  const double expected =
      arc.nldm.delay_ps(config.input_slew_ps, config.po_load_ff);
  EXPECT_NEAR(r.critical_delay_ps, expected, 1e-9);
}

TEST(Sta, TwoStageChainPropagatesSlew) {
  const Netlist nl = inv_chain(2);
  StaConfig config;
  config.wire_delay_per_sink_ps = 0.0;
  const Sta sta(nl, charlib(), config);
  const StaResult r = sta.run(UnitScale{});

  const auto& arc = charlib().cells[lib().index_of("INV_X1")].arc_for("A");
  const double load1 = sta.net_load_ff(1);
  const double d1 = arc.nldm.delay_ps(config.input_slew_ps, load1);
  const double s1 = arc.nldm.output_slew_ps(config.input_slew_ps, load1);
  const double d2 = arc.nldm.delay_ps(s1, config.po_load_ff);
  EXPECT_NEAR(r.critical_delay_ps, d1 + d2, 1e-9);
  EXPECT_NEAR(r.slew_ps[1], s1, 1e-9);
}

TEST(Sta, WireDelayAdds) {
  const Netlist nl = inv_chain(2);
  StaConfig with;
  with.wire_delay_per_sink_ps = 10.0;
  StaConfig without;
  without.wire_delay_per_sink_ps = 0.0;
  const double d_with =
      Sta(nl, charlib(), with).run(UnitScale{}).critical_delay_ps;
  const double d_without =
      Sta(nl, charlib(), without).run(UnitScale{}).critical_delay_ps;
  // Two nets feed gates (pi and the middle net), one sink each.
  EXPECT_NEAR(d_with - d_without, 20.0, 1e-9);
}

TEST(Sta, UniformScaleSlowsEverything) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const double nominal = sta.run(UnitScale{}).critical_delay_ps;
  const double slow = sta.run(UniformScale{1.1}).critical_delay_ps;
  const double fast = sta.run(UniformScale{0.9}).critical_delay_ps;
  EXPECT_GT(slow, nominal);
  EXPECT_LT(fast, nominal);
}

TEST(Sta, CriticalPathIsConnected) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const Sta sta(nl, charlib());
  const StaResult r = sta.run(UnitScale{});
  ASSERT_FALSE(r.critical_path.empty());
  // Consecutive gates on the path must be connected.
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    const std::size_t prev_out = nl.gates()[r.critical_path[i - 1]].output_net;
    bool connected = false;
    for (std::size_t net : nl.gates()[r.critical_path[i]].fanin_nets)
      connected |= net == prev_out;
    EXPECT_TRUE(connected) << "path break at position " << i;
  }
  // The path ends at the critical PO's driver.
  EXPECT_EQ(nl.gates()[r.critical_path.back()].output_net,
            r.critical_po_net);
}

TEST(Sta, ArrivalsMonotoneAlongPath) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const StaResult r = sta.run(UnitScale{});
  double prev = -1.0;
  for (std::size_t gi : r.critical_path) {
    const double a = r.arrival_ps[nl.gates()[gi].output_net];
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(Sta, PoWorstArrivalIsCriticalDelay) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const StaResult r = sta.run(UnitScale{});
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni)
    if (nl.nets()[ni].is_primary_output) {
      EXPECT_LE(r.arrival_ps[ni], r.critical_delay_ps + 1e-9);
    }
}

TEST(Sta, RequiresPrimaryOutput) {
  Netlist nl(lib(), "nopo");
  const std::size_t pi = nl.add_primary_input("pi");
  nl.add_gate("u0", lib().index_of("INV_X1"), {pi});
  const Sta sta(nl, charlib());
  EXPECT_THROW(sta.run(UnitScale{}), PreconditionError);
}

TEST(StaIncremental, MatchesFullRunAfterLocalChange) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const Sta sta(nl, charlib());
  const UnitScale base;
  const StaResult before = sta.run(base);

  // Perturb a handful of gates' scales.
  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(
        lib().master(nl.gates()[gi].cell_index).arcs().size(), 1.0);
  const std::vector<std::size_t> changed = {3, 57, 200};
  for (std::size_t gi : changed)
    for (double& f : factors[gi]) f = 1.2;
  const MatrixScale perturbed(std::move(factors));

  const StaResult full = sta.run(perturbed);
  const StaResult incr = sta.run_incremental(perturbed, before, changed);
  ASSERT_EQ(full.arrival_ps.size(), incr.arrival_ps.size());
  for (std::size_t ni = 0; ni < full.arrival_ps.size(); ++ni) {
    EXPECT_DOUBLE_EQ(full.arrival_ps[ni], incr.arrival_ps[ni]) << ni;
    EXPECT_DOUBLE_EQ(full.slew_ps[ni], incr.slew_ps[ni]) << ni;
  }
  EXPECT_DOUBLE_EQ(full.critical_delay_ps, incr.critical_delay_ps);
  EXPECT_EQ(full.critical_path, incr.critical_path);
}

TEST(StaIncremental, NoChangeIsIdentity) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const UnitScale base;
  const StaResult before = sta.run(base);
  const StaResult incr = sta.run_incremental(base, before, {});
  EXPECT_DOUBLE_EQ(incr.critical_delay_ps, before.critical_delay_ps);
}

TEST(StaIncremental, ChangedEverythingStillExact) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const StaResult before = sta.run(UnitScale{});
  std::vector<std::size_t> all(nl.gates().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const UniformScale slow(1.15);
  const StaResult full = sta.run(slow);
  const StaResult incr = sta.run_incremental(slow, before, all);
  EXPECT_DOUBLE_EQ(full.critical_delay_ps, incr.critical_delay_ps);
}

TEST(StaIncremental, RejectsMismatchedPrevious) {
  const Netlist a = generate_iscas85_like("C432", lib());
  const Netlist b = generate_iscas85_like("C880", lib());
  const Sta sta_a(a, charlib());
  const Sta sta_b(b, charlib());
  const StaResult r_a = sta_a.run(UnitScale{});
  EXPECT_THROW(sta_b.run_incremental(UnitScale{}, r_a, {0}),
               PreconditionError);
}

/// Randomized equivalence: drive a long sequence of random arc-scale
/// edits through run_incremental, checking bit-identity against a fresh
/// full pass after EVERY edit.  Each incremental result becomes the next
/// edit's `previous`, so errors would compound -- exactly the way the ECO
/// loop uses the API.  `parallel` checks against run_parallel instead of
/// run (the reference itself must be schedule-independent).
void random_edit_sequence_stays_exact(const std::string& bench,
                                      std::size_t edits, bool parallel) {
  const Netlist nl = generate_iscas85_like(bench, lib());
  const Sta sta(nl, charlib());
  ThreadPool pool(parallel ? 4 : 0);
  Rng rng(bench);

  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(
        lib().master(nl.gates()[gi].cell_index).arcs().size(), 1.0);

  StaResult current = sta.run(MatrixScale(factors));
  for (std::size_t e = 0; e < edits; ++e) {
    const std::size_t n_changes =
        static_cast<std::size_t>(rng.uniform_int(1, 5));
    std::vector<std::size_t> changed;
    for (std::size_t c = 0; c < n_changes; ++c) {
      const auto g = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nl.gates().size()) - 1));
      if (std::find(changed.begin(), changed.end(), g) != changed.end())
        continue;
      changed.push_back(g);
      for (double& f : factors[g]) f = rng.uniform(0.85, 1.25);
    }
    const MatrixScale scale(factors);
    const StaResult incr = sta.run_incremental(scale, current, changed);
    const StaResult full =
        parallel ? sta.run_parallel(scale, pool) : sta.run(scale);
    ASSERT_EQ(full.arrival_ps.size(), incr.arrival_ps.size());
    for (std::size_t ni = 0; ni < full.arrival_ps.size(); ++ni) {
      ASSERT_DOUBLE_EQ(full.arrival_ps[ni], incr.arrival_ps[ni])
          << "edit " << e << " net " << ni;
      ASSERT_DOUBLE_EQ(full.slew_ps[ni], incr.slew_ps[ni])
          << "edit " << e << " net " << ni;
    }
    ASSERT_DOUBLE_EQ(full.critical_delay_ps, incr.critical_delay_ps)
        << "edit " << e;
    ASSERT_EQ(full.critical_path, incr.critical_path) << "edit " << e;
    current = incr;
  }
}

TEST(StaIncremental, RandomEditSequenceStaysExactC432) {
  random_edit_sequence_stays_exact("C432", 60, /*parallel=*/false);
}

TEST(StaIncremental, RandomEditSequenceStaysExactC880) {
  random_edit_sequence_stays_exact("C880", 40, /*parallel=*/false);
}

TEST(StaIncremental, RandomEditSequenceMatchesParallelC432) {
  random_edit_sequence_stays_exact("C432", 30, /*parallel=*/true);
}

TEST(StaIncremental, RandomEditSequenceMatchesParallelC880) {
  random_edit_sequence_stays_exact("C880", 20, /*parallel=*/true);
}

// Property: scaling delay by f scales the pure-gate-delay portion; with
// zero wire delay the critical delay is within the scale bracket
// [f_min, f_max] of nominal.
class ScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweep, DelayScalesWithinBracket) {
  const double f = GetParam();
  const Netlist nl = generate_iscas85_like("C432", lib());
  StaConfig config;
  config.wire_delay_per_sink_ps = 0.0;
  const Sta sta(nl, charlib(), config);
  const double nominal = sta.run(UnitScale{}).critical_delay_ps;
  const double scaled = sta.run(UniformScale{f}).critical_delay_ps;
  // The scaled path delay cannot move outside the uniform bracket (slew
  // effects keep it close to linear but path switching keeps it bounded).
  if (f > 1.0) {
    EXPECT_GE(scaled, nominal);
    EXPECT_LE(scaled, nominal * f * 1.1);
  } else {
    EXPECT_LE(scaled, nominal);
    EXPECT_GE(scaled, nominal * f * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaleSweep,
                         ::testing::Values(0.85, 0.95, 1.05, 1.2));

}  // namespace
}  // namespace sva
