// Tests for the sta module: load computation, arrival/slew propagation,
// critical paths, and scale-provider semantics, including hand-computed
// delays on a tiny netlist.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>

#include "engine/thread_pool.hpp"
#include "sta/compiled.hpp"
#include "util/metrics.hpp"
#include "netlist/iscas85.hpp"
#include "sta/scale.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sva {
namespace {

const CellLibrary& lib() {
  static const CellLibrary library = build_standard_library();
  return library;
}

const CharacterizedLibrary& charlib() {
  static const CharacterizedLibrary cl = characterize_library(lib());
  return cl;
}

/// pi -> INV -> INV -> PO chain.
Netlist inv_chain(std::size_t length) {
  Netlist nl(lib(), "chain");
  std::size_t net = nl.add_primary_input("pi");
  for (std::size_t i = 0; i < length; ++i)
    net = nl.add_gate("u" + std::to_string(i), lib().index_of("INV_X1"),
                      {net});
  nl.mark_primary_output(net);
  return nl;
}

TEST(Sta, NetLoadMatchesHandComputation) {
  const Netlist nl = inv_chain(2);
  StaConfig config;
  const Sta sta(nl, charlib(), config);
  // Net 1 (output of u0) drives u1's pin A plus wire cap for one sink.
  const double pin_cap = charlib().cells[lib().index_of("INV_X1")]
                             .master.pin("A")
                             .input_cap_ff;
  EXPECT_NEAR(sta.net_load_ff(1), pin_cap + config.wire_cap_per_sink_ff,
              1e-12);
  // Final net: PO load only (no sinks).
  EXPECT_NEAR(sta.net_load_ff(2), config.po_load_ff, 1e-12);
}

TEST(Sta, ChainDelayMatchesHandComputation) {
  const Netlist nl = inv_chain(1);
  StaConfig config;
  config.wire_delay_per_sink_ps = 0.0;
  const Sta sta(nl, charlib(), config);
  const StaResult r = sta.run(UnitScale{});

  const auto& arc = charlib().cells[lib().index_of("INV_X1")].arc_for("A");
  const double expected =
      arc.nldm.delay_ps(config.input_slew_ps, config.po_load_ff);
  EXPECT_NEAR(r.critical_delay_ps, expected, 1e-9);
}

TEST(Sta, TwoStageChainPropagatesSlew) {
  const Netlist nl = inv_chain(2);
  StaConfig config;
  config.wire_delay_per_sink_ps = 0.0;
  const Sta sta(nl, charlib(), config);
  const StaResult r = sta.run(UnitScale{});

  const auto& arc = charlib().cells[lib().index_of("INV_X1")].arc_for("A");
  const double load1 = sta.net_load_ff(1);
  const double d1 = arc.nldm.delay_ps(config.input_slew_ps, load1);
  const double s1 = arc.nldm.output_slew_ps(config.input_slew_ps, load1);
  const double d2 = arc.nldm.delay_ps(s1, config.po_load_ff);
  EXPECT_NEAR(r.critical_delay_ps, d1 + d2, 1e-9);
  EXPECT_NEAR(r.slew_ps[1], s1, 1e-9);
}

TEST(Sta, WireDelayAdds) {
  const Netlist nl = inv_chain(2);
  StaConfig with;
  with.wire_delay_per_sink_ps = 10.0;
  StaConfig without;
  without.wire_delay_per_sink_ps = 0.0;
  const double d_with =
      Sta(nl, charlib(), with).run(UnitScale{}).critical_delay_ps;
  const double d_without =
      Sta(nl, charlib(), without).run(UnitScale{}).critical_delay_ps;
  // Two nets feed gates (pi and the middle net), one sink each.
  EXPECT_NEAR(d_with - d_without, 20.0, 1e-9);
}

TEST(Sta, UniformScaleSlowsEverything) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const double nominal = sta.run(UnitScale{}).critical_delay_ps;
  const double slow = sta.run(UniformScale{1.1}).critical_delay_ps;
  const double fast = sta.run(UniformScale{0.9}).critical_delay_ps;
  EXPECT_GT(slow, nominal);
  EXPECT_LT(fast, nominal);
}

TEST(Sta, CriticalPathIsConnected) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const Sta sta(nl, charlib());
  const StaResult r = sta.run(UnitScale{});
  ASSERT_FALSE(r.critical_path.empty());
  // Consecutive gates on the path must be connected.
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    const std::size_t prev_out = nl.gates()[r.critical_path[i - 1]].output_net;
    bool connected = false;
    for (std::size_t net : nl.gates()[r.critical_path[i]].fanin_nets)
      connected |= net == prev_out;
    EXPECT_TRUE(connected) << "path break at position " << i;
  }
  // The path ends at the critical PO's driver.
  EXPECT_EQ(nl.gates()[r.critical_path.back()].output_net,
            r.critical_po_net);
}

TEST(Sta, ArrivalsMonotoneAlongPath) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const StaResult r = sta.run(UnitScale{});
  double prev = -1.0;
  for (std::size_t gi : r.critical_path) {
    const double a = r.arrival_ps[nl.gates()[gi].output_net];
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(Sta, PoWorstArrivalIsCriticalDelay) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const StaResult r = sta.run(UnitScale{});
  for (std::size_t ni = 0; ni < nl.nets().size(); ++ni)
    if (nl.nets()[ni].is_primary_output) {
      EXPECT_LE(r.arrival_ps[ni], r.critical_delay_ps + 1e-9);
    }
}

TEST(Sta, RequiresPrimaryOutput) {
  Netlist nl(lib(), "nopo");
  const std::size_t pi = nl.add_primary_input("pi");
  nl.add_gate("u0", lib().index_of("INV_X1"), {pi});
  const Sta sta(nl, charlib());
  EXPECT_THROW(sta.run(UnitScale{}), PreconditionError);
}

TEST(StaIncremental, MatchesFullRunAfterLocalChange) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const Sta sta(nl, charlib());
  const UnitScale base;
  const StaResult before = sta.run(base);

  // Perturb a handful of gates' scales.
  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(
        lib().master(nl.gates()[gi].cell_index).arcs().size(), 1.0);
  const std::vector<std::size_t> changed = {3, 57, 200};
  for (std::size_t gi : changed)
    for (double& f : factors[gi]) f = 1.2;
  const MatrixScale perturbed(std::move(factors));

  const StaResult full = sta.run(perturbed);
  const StaResult incr = sta.run_incremental(perturbed, before, changed);
  ASSERT_EQ(full.arrival_ps.size(), incr.arrival_ps.size());
  for (std::size_t ni = 0; ni < full.arrival_ps.size(); ++ni) {
    EXPECT_DOUBLE_EQ(full.arrival_ps[ni], incr.arrival_ps[ni]) << ni;
    EXPECT_DOUBLE_EQ(full.slew_ps[ni], incr.slew_ps[ni]) << ni;
  }
  EXPECT_DOUBLE_EQ(full.critical_delay_ps, incr.critical_delay_ps);
  EXPECT_EQ(full.critical_path, incr.critical_path);
}

TEST(StaIncremental, NoChangeIsIdentity) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const UnitScale base;
  const StaResult before = sta.run(base);
  const StaResult incr = sta.run_incremental(base, before, {});
  EXPECT_DOUBLE_EQ(incr.critical_delay_ps, before.critical_delay_ps);
}

TEST(StaIncremental, ChangedEverythingStillExact) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  const StaResult before = sta.run(UnitScale{});
  std::vector<std::size_t> all(nl.gates().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const UniformScale slow(1.15);
  const StaResult full = sta.run(slow);
  const StaResult incr = sta.run_incremental(slow, before, all);
  EXPECT_DOUBLE_EQ(full.critical_delay_ps, incr.critical_delay_ps);
}

TEST(StaIncremental, RejectsMismatchedPrevious) {
  const Netlist a = generate_iscas85_like("C432", lib());
  const Netlist b = generate_iscas85_like("C880", lib());
  const Sta sta_a(a, charlib());
  const Sta sta_b(b, charlib());
  const StaResult r_a = sta_a.run(UnitScale{});
  EXPECT_THROW(sta_b.run_incremental(UnitScale{}, r_a, {0}),
               PreconditionError);
}

/// Randomized equivalence: drive a long sequence of random arc-scale
/// edits through run_incremental, checking bit-identity against a fresh
/// full pass after EVERY edit.  Each incremental result becomes the next
/// edit's `previous`, so errors would compound -- exactly the way the ECO
/// loop uses the API.  `parallel` checks against run_parallel instead of
/// run (the reference itself must be schedule-independent).
void random_edit_sequence_stays_exact(const std::string& bench,
                                      std::size_t edits, bool parallel) {
  const Netlist nl = generate_iscas85_like(bench, lib());
  const Sta sta(nl, charlib());
  ThreadPool pool(parallel ? 4 : 0);
  Rng rng(bench);

  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(
        lib().master(nl.gates()[gi].cell_index).arcs().size(), 1.0);

  StaResult current = sta.run(MatrixScale(factors));
  for (std::size_t e = 0; e < edits; ++e) {
    const std::size_t n_changes =
        static_cast<std::size_t>(rng.uniform_int(1, 5));
    std::vector<std::size_t> changed;
    for (std::size_t c = 0; c < n_changes; ++c) {
      const auto g = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nl.gates().size()) - 1));
      if (std::find(changed.begin(), changed.end(), g) != changed.end())
        continue;
      changed.push_back(g);
      for (double& f : factors[g]) f = rng.uniform(0.85, 1.25);
    }
    const MatrixScale scale(factors);
    const StaResult incr = sta.run_incremental(scale, current, changed);
    const StaResult full =
        parallel ? sta.run_parallel(scale, pool) : sta.run(scale);
    ASSERT_EQ(full.arrival_ps.size(), incr.arrival_ps.size());
    for (std::size_t ni = 0; ni < full.arrival_ps.size(); ++ni) {
      ASSERT_DOUBLE_EQ(full.arrival_ps[ni], incr.arrival_ps[ni])
          << "edit " << e << " net " << ni;
      ASSERT_DOUBLE_EQ(full.slew_ps[ni], incr.slew_ps[ni])
          << "edit " << e << " net " << ni;
    }
    ASSERT_DOUBLE_EQ(full.critical_delay_ps, incr.critical_delay_ps)
        << "edit " << e;
    ASSERT_EQ(full.critical_path, incr.critical_path) << "edit " << e;
    current = incr;
  }
}

TEST(StaIncremental, RandomEditSequenceStaysExactC432) {
  random_edit_sequence_stays_exact("C432", 60, /*parallel=*/false);
}

TEST(StaIncremental, RandomEditSequenceStaysExactC880) {
  random_edit_sequence_stays_exact("C880", 40, /*parallel=*/false);
}

TEST(StaIncremental, RandomEditSequenceMatchesParallelC432) {
  random_edit_sequence_stays_exact("C432", 30, /*parallel=*/true);
}

TEST(StaIncremental, RandomEditSequenceMatchesParallelC880) {
  random_edit_sequence_stays_exact("C880", 20, /*parallel=*/true);
}

// Property: scaling delay by f scales the pure-gate-delay portion; with
// zero wire delay the critical delay is within the scale bracket
// [f_min, f_max] of nominal.
class ScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweep, DelayScalesWithinBracket) {
  const double f = GetParam();
  const Netlist nl = generate_iscas85_like("C432", lib());
  StaConfig config;
  config.wire_delay_per_sink_ps = 0.0;
  const Sta sta(nl, charlib(), config);
  const double nominal = sta.run(UnitScale{}).critical_delay_ps;
  const double scaled = sta.run(UniformScale{f}).critical_delay_ps;
  // The scaled path delay cannot move outside the uniform bracket (slew
  // effects keep it close to linear but path switching keeps it bounded).
  if (f > 1.0) {
    EXPECT_GE(scaled, nominal);
    EXPECT_LE(scaled, nominal * f * 1.1);
  } else {
    EXPECT_LE(scaled, nominal);
    EXPECT_GE(scaled, nominal * f * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaleSweep,
                         ::testing::Values(0.85, 0.95, 1.05, 1.2));

// ---------------------------------------------------------------------------
// Compiled-kernel differential fuzzing: run() executes the flat compiled
// program (sta/compiled.hpp) and must be BIT-identical -- not just close --
// to the scalar interpreter run_scalar() under every scale provider, thread
// count, override set, and incremental seed set.  All comparisons below go
// through std::bit_cast so even a last-ulp divergence fails.

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const StaResult& a, const StaResult& b,
                          const std::string& what) {
  ASSERT_EQ(a.arrival_ps.size(), b.arrival_ps.size()) << what;
  for (std::size_t ni = 0; ni < a.arrival_ps.size(); ++ni) {
    ASSERT_EQ(bits(a.arrival_ps[ni]), bits(b.arrival_ps[ni]))
        << what << " arrival net " << ni;
    ASSERT_EQ(bits(a.slew_ps[ni]), bits(b.slew_ps[ni]))
        << what << " slew net " << ni;
    ASSERT_EQ(a.from_net[ni], b.from_net[ni]) << what << " from net " << ni;
  }
  ASSERT_EQ(bits(a.critical_delay_ps), bits(b.critical_delay_ps)) << what;
  ASSERT_EQ(a.critical_po_net, b.critical_po_net) << what;
  ASSERT_EQ(a.critical_path, b.critical_path) << what;
}

/// Random per-(gate, arc) factors in [0.8, 1.3), seeded by `tag`.
MatrixScale random_scale(const Netlist& nl, const std::string& tag) {
  Rng rng(tag);
  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    factors[gi].resize(lib().master(nl.gates()[gi].cell_index).arcs().size());
    for (double& f : factors[gi]) f = rng.uniform(0.8, 1.3);
  }
  return MatrixScale(std::move(factors));
}

TEST(StaKernel, CompiledMatchesScalarBitwiseAllCircuits) {
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    const Netlist nl = generate_iscas85_like(spec.name, lib());
    const Sta sta(nl, charlib());
    const MatrixScale scale = random_scale(nl, "kernel-" + spec.name);
    expect_bit_identical(sta.run(scale), sta.run_scalar(scale), spec.name);
    expect_bit_identical(sta.run(UnitScale{}), sta.run_scalar(UnitScale{}),
                         spec.name + " unit");
  }
}

TEST(StaKernel, CompiledMatchesScalarUnderRandomScaleFuzz) {
  const Netlist nl = generate_iscas85_like("C880", lib());
  const Sta sta(nl, charlib());
  for (int round = 0; round < 25; ++round) {
    const MatrixScale scale =
        random_scale(nl, "fuzz-" + std::to_string(round));
    expect_bit_identical(sta.run(scale), sta.run_scalar(scale),
                         "round " + std::to_string(round));
  }
}

TEST(StaKernel, ParallelIsBitIdenticalAcrossThreadCounts) {
  const Netlist nl = generate_iscas85_like("C2670", lib());
  const Sta sta(nl, charlib());
  const MatrixScale scale = random_scale(nl, "threads");
  const StaResult reference = sta.run(scale);
  for (std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    expect_bit_identical(reference, sta.run_parallel(scale, pool),
                         "threads=" + std::to_string(threads));
  }
}

TEST(StaKernel, SlackFromCompiledRunMatchesScalarRun) {
  const Netlist nl = generate_iscas85_like("C1355", lib());
  const Sta sta(nl, charlib());
  const MatrixScale scale = random_scale(nl, "slack");
  const double clock = sta.run(scale).critical_delay_ps * 1.05;
  const SlackResult a = sta.run_with_slack(scale, clock);
  const SlackResult b = sta.slack_from(scale, sta.run_scalar(scale), clock);
  ASSERT_EQ(a.slack_ps.size(), b.slack_ps.size());
  for (std::size_t ni = 0; ni < a.slack_ps.size(); ++ni)
    ASSERT_EQ(bits(a.slack_ps[ni]), bits(b.slack_ps[ni])) << ni;
  ASSERT_EQ(bits(a.worst_slack_ps), bits(b.worst_slack_ps));
  ASSERT_EQ(a.worst_slack_net, b.worst_slack_net);
}

TEST(StaKernel, ArenaDeduplicatesSharedTables) {
  const Netlist nl = generate_iscas85_like("C432", lib());
  const Sta sta(nl, charlib());
  // Symmetric arcs (e.g. XOR2's repeated A/B devices) produce content-
  // identical tables; the arena must fold them.
  EXPECT_GT(sta.compiled().tables_total(), sta.compiled().tables_unique());
  EXPECT_GT(sta.compiled().arena_bytes(), 0u);
  EXPECT_EQ(sta.compiled().gate_count(), nl.gates().size());
}

/// Cells grouped by identical input-pin name sequences -- the
/// set_gate_cell / GateCellOverride pin-compatibility domain.
std::vector<std::size_t> compatible_cells(std::size_t cell_index) {
  const auto input_pins = [](std::size_t ci) {
    std::vector<std::string> names;
    for (const Pin& p : lib().master(ci).pins())
      if (!p.is_output) names.push_back(p.name);
    return names;
  };
  const std::vector<std::string> want = input_pins(cell_index);
  std::vector<std::size_t> out;
  for (std::size_t ci = 0; ci < lib().size(); ++ci)
    if (input_pins(ci) == want) out.push_back(ci);
  return out;
}

/// Long random what-if fuzz: masters swapped hypothetically through
/// run_what_if must match a full compiled run on a REALLY mutated netlist
/// (fresh Sta) bit for bit, round after round, with each what-if result
/// feeding the next round's `previous` after committing the swaps.
TEST(StaKernel, WhatIfOverridesMatchMutatedNetlistBitwise) {
  Netlist nl = generate_iscas85_like("C880", lib());
  Rng rng("whatif");
  Sta sta(nl, charlib());
  const UnitScale scale;
  StaResult current = sta.run(scale);

  for (int round = 0; round < 12; ++round) {
    // Pick up to 4 distinct gates and a pin-compatible replacement each.
    std::vector<Sta::GateCellOverride> overrides;
    for (int k = 0; k < 4; ++k) {
      const auto gi = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nl.gates().size()) - 1));
      const auto already = [&](const Sta::GateCellOverride& o) {
        return o.gate == gi;
      };
      if (std::find_if(overrides.begin(), overrides.end(), already) !=
          overrides.end())
        continue;
      const std::vector<std::size_t> group =
          compatible_cells(nl.gates()[gi].cell_index);
      const std::size_t pick = group[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(group.size()) - 1))];
      overrides.push_back({gi, pick});
    }

    const StaResult what_if = sta.run_what_if(scale, current, overrides, {});

    // Oracle: actually mutate a copy of the netlist and analyze fresh.
    Netlist mutated = nl;
    for (const Sta::GateCellOverride& o : overrides)
      mutated.set_gate_cell(o.gate, o.cell_index);
    const Sta oracle(mutated, charlib());
    expect_bit_identical(what_if, oracle.run(scale),
                         "round " + std::to_string(round));

    // Commit the swaps for the next round (exercises update_gate_master's
    // compiled-program refresh).
    for (const Sta::GateCellOverride& o : overrides) {
      nl.set_gate_cell(o.gate, o.cell_index);
      sta.update_gate_master(o.gate);
    }
    current = sta.run(scale);
    expect_bit_identical(current, oracle.run(scale),
                         "commit round " + std::to_string(round));
  }
}

TEST(StaKernel, WhatIfCombinedOverridesAndScaleSeedsStayExact) {
  const Netlist nl = generate_iscas85_like("C1908", lib());
  const Sta sta(nl, charlib());
  Rng rng("combined");

  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(
        lib().master(nl.gates()[gi].cell_index).arcs().size(), 1.0);
  StaResult current = sta.run(MatrixScale(factors));

  for (int round = 0; round < 10; ++round) {
    // Scale edits...
    std::vector<std::size_t> changed;
    for (int k = 0; k < 3; ++k) {
      const auto gi = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nl.gates().size()) - 1));
      changed.push_back(gi);
      for (double& f : factors[gi]) f = rng.uniform(0.85, 1.25);
    }
    // ...plus hypothetical master swaps in the same what-if call.
    std::vector<Sta::GateCellOverride> overrides;
    const auto gi = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(nl.gates().size()) - 1));
    const std::vector<std::size_t> group =
        compatible_cells(nl.gates()[gi].cell_index);
    overrides.push_back({gi, group[static_cast<std::size_t>(rng.uniform_int(
                                 0, static_cast<std::int64_t>(group.size()) -
                                        1))]});

    const MatrixScale scale(factors);
    const StaResult what_if =
        sta.run_what_if(scale, current, overrides, changed);

    Netlist mutated = nl;
    for (const Sta::GateCellOverride& o : overrides)
      mutated.set_gate_cell(o.gate, o.cell_index);
    const Sta oracle(mutated, charlib());
    expect_bit_identical(what_if, oracle.run(scale),
                         "round " + std::to_string(round));

    // Next round continues from the no-override state of the edited scale.
    current = sta.run_incremental(scale, current, changed);
  }
}

TEST(StaKernel, IncrementalCountsTouchedGates) {
  const Netlist nl = generate_iscas85_like("C2670", lib());
  const Sta sta(nl, charlib());
  const StaResult before = sta.run(UnitScale{});

  Counter& touched = MetricsRegistry::global().counter(
      "sta.kernel.incremental_gates_touched");
  Counter& total =
      MetricsRegistry::global().counter("sta.kernel.incremental_gates_total");
  const std::uint64_t touched0 = touched.value();
  const std::uint64_t total0 = total.value();

  // A single late-level seed must re-evaluate a small cone, not the graph.
  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(
        lib().master(nl.gates()[gi].cell_index).arcs().size(), 1.0);
  const std::size_t seed = nl.gates().size() - 1;
  for (double& f : factors[seed]) f = 1.3;
  sta.run_incremental(MatrixScale(std::move(factors)), before, {seed});

  const std::uint64_t cone = touched.value() - touched0;
  EXPECT_EQ(total.value() - total0, nl.gates().size());
  EXPECT_GE(cone, 1u);
  EXPECT_LT(cone, nl.gates().size() / 4);
}

}  // namespace
}  // namespace sva
