// Tests for the third extension wave: MEEF, timing yield, and the
// systematic-fraction decomposition helpers.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/statistical.hpp"
#include "litho/meef.hpp"
#include "util/error.hpp"

namespace sva {
namespace {

const LithoProcess& process() {
  static const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  return proc;
}

// ------------------------------------------------------------------ MEEF

TEST(Meef, AmplifiesMaskErrors) {
  // At a dense, near-resolution pitch, mask errors are amplified.
  const double m = meef_at_pitch(process(), 90.0, 240.0);
  EXPECT_GT(m, 1.0);
  EXPECT_LT(m, 10.0);
}

TEST(Meef, DeterministicAndDeltaRobust) {
  const double a = meef_at_pitch(process(), 90.0, 300.0, 2.0);
  const double b = meef_at_pitch(process(), 90.0, 300.0, 2.0);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = meef_at_pitch(process(), 90.0, 300.0, 4.0);
  EXPECT_NEAR(a, c, 0.8);  // finite-difference step robustness
}

TEST(Meef, SweepMatchesPointQueries) {
  const auto points = meef_through_pitch(process(), 90.0, {240.0, 400.0});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].meef, meef_at_pitch(process(), 90.0, 240.0));
  EXPECT_DOUBLE_EQ(points[1].meef, meef_at_pitch(process(), 90.0, 400.0));
}

TEST(Meef, FailureReportsZero) {
  // At extreme defocus the isolated feature vanishes; MEEF reports 0.
  const double m = meef_at_pitch(process(), 90.0, 900.0, 2.0, 320.0);
  EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(Meef, RejectsBadArguments) {
  EXPECT_THROW(meef_at_pitch(process(), 90.0, 240.0, 0.0),
               PreconditionError);
  EXPECT_THROW(meef_at_pitch(process(), 90.0, 240.0, 60.0),
               PreconditionError);
  EXPECT_THROW(meef_at_pitch(process(), 90.0, 92.0, 2.0),
               PreconditionError);
}

// ----------------------------------------------------------------- Yield

DelayDistribution fake_distribution() {
  DelayDistribution d;
  for (int i = 1; i <= 100; ++i) d.delays_ps.push_back(10.0 * i);
  return d;
}

TEST(Yield, FractionMeetingClock) {
  const DelayDistribution d = fake_distribution();
  EXPECT_DOUBLE_EQ(timing_yield(d, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(timing_yield(d, 500.0), 0.5);
  EXPECT_DOUBLE_EQ(timing_yield(d, 5.0), 0.0);
}

TEST(Yield, MonotoneInClock) {
  const DelayDistribution d = fake_distribution();
  double prev = -1.0;
  for (double clock : {100.0, 300.0, 700.0, 1200.0}) {
    const double y = timing_yield(d, clock);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Yield, PeriodForYieldIsQuantile) {
  const DelayDistribution d = fake_distribution();
  EXPECT_DOUBLE_EQ(period_for_yield(d, 1.0), 1000.0);
  EXPECT_NEAR(period_for_yield(d, 0.5), d.quantile_ps(0.5), 1e-9);
}

TEST(Yield, RejectsBadInputs) {
  const DelayDistribution d = fake_distribution();
  EXPECT_THROW(period_for_yield(d, 0.0), PreconditionError);
  EXPECT_THROW(timing_yield(DelayDistribution{}, 100.0),
               PreconditionError);
}

TEST(Yield, ContextAwareAllowsFasterSignoff) {
  static const SvaFlow flow{FlowConfig{}};
  const Netlist nl = flow.make_benchmark("C432");
  const Placement p = flow.make_placement(nl);
  const Sta sta(nl, flow.characterized(), flow.config().sta);
  const auto versions = flow.bind_versions(p);
  const NaiveGaussianSampler naive(nl, flow.config().budget, 90.0);
  const ContextAwareSampler aware(nl, flow.context_library(), versions,
                                  flow.config().budget);
  MonteCarloConfig mc;
  mc.samples = 400;
  const double p_naive =
      period_for_yield(run_monte_carlo(sta, naive, mc), 0.999);
  const double p_aware =
      period_for_yield(run_monte_carlo(sta, aware, mc), 0.999);
  EXPECT_LT(p_aware, p_naive);
}

}  // namespace
}  // namespace sva
