// Robustness tests: the fault-injection framework (failpoints), the
// structured diagnostics sink, bounded retry, snapshot quarantine, the
// graceful-degradation paths (per-cell OPC fallback, per-job batch
// isolation), and a chaos sweep over every registered failpoint.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "cell/library.hpp"
#include "cell/library_opc.hpp"
#include "core/flow.hpp"
#include "engine/batch.hpp"
#include "engine/context_cache.hpp"
#include "engine/options.hpp"
#include "engine/thread_pool.hpp"
#include "util/cache_gc.hpp"
#include "util/cancel.hpp"
#include "util/checkpoint.hpp"
#include "util/diagnostics.hpp"
#include "util/failpoint.hpp"
#include "util/filelock.hpp"
#include "util/metrics.hpp"
#include "util/retry.hpp"
#include "util/serialize.hpp"

namespace sva {
namespace {

/// Flow construction runs library OPC; share one fault-free instance.
const SvaFlow& shared_flow() {
  static const SvaFlow* flow = new SvaFlow(FlowConfig{});
  return *flow;
}

/// Every test starts and ends with no armed failpoint and a clean
/// diagnostics sink, so injected faults can never leak across tests.
class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::clear_all();
    Diagnostics::global().reset();
  }
  void TearDown() override {
    FailPoints::clear_all();
    Diagnostics::global().reset();
  }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sva_robust_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Quarantine names carry a ".<pid>.<counter>" suffix (collision-proof
/// across concurrent processes), so tests match by prefix.
std::size_t quarantine_count(const std::string& path) {
  const std::filesystem::path target(path);
  const std::string prefix = target.filename().string() + ".corrupt";
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(target.parent_path(), ec))
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++n;
  return n;
}

bool quarantine_exists(const std::string& path) {
  return quarantine_count(path) > 0;
}

// ------------------------------------------------------------ failpoints

using FailPointTest = RobustnessTest;

TEST_F(FailPointTest, DisabledByDefault) {
  EXPECT_FALSE(FailPoints::any_active());
  SVA_FAILPOINT("robust.test.nothing");  // must be a no-op
  EXPECT_EQ(FailPoints::fired_count("robust.test.nothing"), 0u);
}

TEST_F(FailPointTest, ThrowActionFiresEveryHit) {
  FailPoints::set("robust.test.site", "throw");
  EXPECT_TRUE(FailPoints::any_active());
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(SVA_FAILPOINT("robust.test.site"), FailPointError);
  EXPECT_EQ(FailPoints::fired_count("robust.test.site"), 3u);
  // An armed site does not affect other sites.
  SVA_FAILPOINT("robust.test.other");
}

TEST_F(FailPointTest, InjectedFaultIsAnSvaError) {
  FailPoints::set("robust.test.site", "throw");
  // FailPointError must flow through the same handlers as real faults.
  EXPECT_THROW(SVA_FAILPOINT("robust.test.site"), Error);
}

TEST_F(FailPointTest, OffAndClearDisarm) {
  FailPoints::set("robust.test.site", "throw");
  FailPoints::set("robust.test.site", "off");
  EXPECT_FALSE(FailPoints::any_active());
  SVA_FAILPOINT("robust.test.site");

  FailPoints::set("robust.test.site", "throw");
  FailPoints::clear("robust.test.site");
  EXPECT_FALSE(FailPoints::any_active());
  SVA_FAILPOINT("robust.test.site");
}

TEST_F(FailPointTest, ProbEndpointsAreExact) {
  FailPoints::set("robust.test.p0", "prob(0.0)");
  for (int i = 0; i < 100; ++i) SVA_FAILPOINT("robust.test.p0");
  EXPECT_EQ(FailPoints::fired_count("robust.test.p0"), 0u);

  FailPoints::set("robust.test.p1", "prob(1.0)");
  EXPECT_THROW(SVA_FAILPOINT("robust.test.p1"), FailPointError);
}

TEST_F(FailPointTest, KeyedProbDecisionIsDeterministic) {
  FailPoints::set("robust.test.keyed", "prob(0.5)");
  // The decision is a pure hash of (name, key): replaying the same key
  // must replay the same outcome, hit after hit.
  std::vector<bool> first;
  for (std::uint64_t key = 0; key < 64; ++key) {
    bool threw = false;
    try {
      SVA_FAILPOINT_KEYED("robust.test.keyed", key);
    } catch (const FailPointError&) {
      threw = true;
    }
    first.push_back(threw);
  }
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t key = 0; key < 64; ++key) {
      bool threw = false;
      try {
        SVA_FAILPOINT_KEYED("robust.test.keyed", key);
      } catch (const FailPointError&) {
        threw = true;
      }
      EXPECT_EQ(threw, first[key]) << "key " << key;
    }
  }
  // At p=0.5 over 64 keys, an all-pass or all-fail split would mean the
  // hash is not mixing (probability 2^-63 for a real uniform).
  std::size_t fired = 0;
  for (const bool b : first) fired += b ? 1u : 0u;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());
}

TEST_F(FailPointTest, UnkeyedProbRerollsPerHit) {
  FailPoints::set("robust.test.roll", "prob(0.5)");
  // Each unkeyed hit draws a fresh counter key, so across 64 hits both
  // outcomes must appear (this is what lets a retry succeed).
  std::size_t threw = 0;
  for (int i = 0; i < 64; ++i) {
    try {
      SVA_FAILPOINT("robust.test.roll");
    } catch (const FailPointError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0u);
  EXPECT_LT(threw, 64u);
}

TEST_F(FailPointTest, DelayActionSleepsAndContinues) {
  FailPoints::set("robust.test.delay", "delay(5)");
  const auto t0 = std::chrono::steady_clock::now();
  SVA_FAILPOINT("robust.test.delay");  // must not throw
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(5));
  EXPECT_EQ(FailPoints::fired_count("robust.test.delay"), 1u);
}

TEST_F(FailPointTest, CorruptHonouredOnlyWhereSupported) {
  FailPoints::set("robust.test.corrupt", "corrupt");
  EXPECT_EQ(FailPoints::hit("robust.test.corrupt", FailPoints::kNoKey,
                            /*supports_corrupt=*/true),
            FailAction::Corrupt);
  // A site without a payload treats corrupt as throw.
  EXPECT_THROW(SVA_FAILPOINT("robust.test.corrupt"), FailPointError);
}

TEST_F(FailPointTest, ConfigureParsesCommaList) {
  FailPoints::configure(
      "robust.test.a=throw,robust.test.b=prob(0.25),robust.test.c=delay(1)");
  EXPECT_THROW(SVA_FAILPOINT("robust.test.a"), FailPointError);
  SVA_FAILPOINT("robust.test.c");
  EXPECT_EQ(FailPoints::fired_count("robust.test.c"), 1u);
}

TEST_F(FailPointTest, MalformedSpecsRejectedBeforeArming) {
  for (const char* bad :
       {"explode", "prob(2)", "prob(-0.1)", "prob(x)", "prob(", "delay(-1)",
        "delay(abc)", "prob(0.5)x"}) {
    EXPECT_THROW(FailPoints::set("robust.test.bad", bad), PreconditionError)
        << bad;
    EXPECT_FALSE(FailPoints::any_active()) << bad;
  }
  EXPECT_THROW(FailPoints::configure("=throw"), PreconditionError);
  EXPECT_THROW(FailPoints::configure("noequals"), PreconditionError);
  EXPECT_THROW(FailPoints::set("", "throw"), PreconditionError);
}

TEST_F(FailPointTest, ConfigureFromEnvArmsAndCounts) {
  ::setenv("SVA_FAILPOINTS", "robust.test.env=throw", 1);
  EXPECT_EQ(FailPoints::configure_from_env(), 1u);
  ::unsetenv("SVA_FAILPOINTS");
  EXPECT_THROW(SVA_FAILPOINT("robust.test.env"), FailPointError);
}

TEST_F(FailPointTest, CatalogueListsEveryWiredSite) {
  const std::vector<std::string>& sites = FailPoints::catalogue();
  for (const char* expected :
       {"serialize.read", "serialize.write", "serialize.rename",
        "context_cache.load", "context_cache.save", "flow.setup_load",
        "opc.cell_solve", "engine.task", "batch.job", "checkpoint.write",
        "cache.lock"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << expected;
  }
}

// ----------------------------------------------------------- diagnostics

using DiagnosticsTest = RobustnessTest;

TEST_F(DiagnosticsTest, ReportCountsAndSnapshots) {
  Diagnostics& diag = Diagnostics::global();
  diag_warn("opc", "opc_cell_degraded", "cell NAND2 fell back");
  diag_error("batch", "batch_job_failed", "job 0 (C432) failed");
  diag_info("flow", "setup_note", "warm start");

  EXPECT_EQ(diag.count(DiagSeverity::Warning), 1u);
  EXPECT_EQ(diag.count(DiagSeverity::Error), 1u);
  EXPECT_EQ(diag.count(DiagSeverity::Info), 1u);
  EXPECT_EQ(diag.count_code("opc_cell_degraded"), 1u);
  EXPECT_EQ(diag.count_code("no_such_code"), 0u);

  const std::vector<Diagnostic> entries = diag.snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].component, "opc");
  EXPECT_EQ(entries[0].code, "opc_cell_degraded");
  EXPECT_EQ(entries[1].severity, DiagSeverity::Error);
}

TEST_F(DiagnosticsTest, RenderListsEntriesAndSummary) {
  Diagnostics& diag = Diagnostics::global();
  EXPECT_TRUE(diag.render().empty());
  diag_warn("context_cache", "cache_quarantined", "snapshot x quarantined");
  const std::string report = diag.render();
  EXPECT_NE(report.find("cache_quarantined"), std::string::npos);
  EXPECT_NE(report.find("context_cache"), std::string::npos);
  EXPECT_NE(report.find("1 warning"), std::string::npos);

  diag.reset();
  EXPECT_TRUE(diag.render().empty());
  EXPECT_EQ(diag.count(DiagSeverity::Warning), 0u);
}

TEST_F(DiagnosticsTest, SeverityTotalsExactPastStorageCap) {
  Diagnostics& diag = Diagnostics::global();
  const std::size_t n = Diagnostics::kMaxStored + 17;
  for (std::size_t i = 0; i < n; ++i)
    diag_warn("soak", "soak_overflow", "entry");
  EXPECT_EQ(diag.count(DiagSeverity::Warning), n);
  // Stored detail is bounded; totals are not.
  EXPECT_EQ(diag.snapshot().size(), Diagnostics::kMaxStored);
  EXPECT_EQ(diag.count_code("soak_overflow"), Diagnostics::kMaxStored);
}

TEST_F(DiagnosticsTest, ConcurrentReportsAllCounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i)
        diag_warn("stress", "stress_code", "m");
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Diagnostics::global().count(DiagSeverity::Warning),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(DiagnosticsTest, ReportsFeedMetrics) {
  const std::uint64_t before =
      MetricsRegistry::global().counter("diag.metrics_probe").value();
  diag_warn("test", "metrics_probe", "x");
  diag_warn("test", "metrics_probe", "y");
  EXPECT_EQ(MetricsRegistry::global().counter("diag.metrics_probe").value(),
            before + 2);
}

// ----------------------------------------------------------------- retry

using RetryTest = RobustnessTest;

TEST_F(RetryTest, TransientFailureEventuallySucceeds) {
  int attempts = 0;
  const int value = with_retry("unit", RetryPolicy{}, [&] {
    if (++attempts < 3) throw SerializeError("transient");
    return 42;
  });
  EXPECT_EQ(value, 42);
  EXPECT_EQ(attempts, 3);
}

TEST_F(RetryTest, ExhaustedAttemptsRethrowLastError) {
  int attempts = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_THROW(with_retry("unit", policy,
                          [&]() -> int {
                            ++attempts;
                            throw SerializeError("persistent");
                          }),
               SerializeError);
  EXPECT_EQ(attempts, 3);
}

TEST_F(RetryTest, FileMissingIsPermanentNotRetried) {
  int attempts = 0;
  EXPECT_THROW(with_retry("unit", RetryPolicy{},
                          [&]() -> int {
                            ++attempts;
                            throw FileMissingError("no such file");
                          }),
               FileMissingError);
  EXPECT_EQ(attempts, 1);
}

TEST_F(RetryTest, InjectedFaultsAreRetriable) {
  // A FailPointError is an sva::Error, so an injected transient read
  // fault goes down the same retry path as a real one.
  FailPoints::set("robust.test.retry", "throw");
  int attempts = 0;
  RetryPolicy policy;
  policy.max_attempts = 2;
  EXPECT_THROW(with_retry("unit", policy,
                          [&]() -> int {
                            ++attempts;
                            SVA_FAILPOINT("robust.test.retry");
                            return 0;
                          }),
               FailPointError);
  EXPECT_EQ(attempts, 2);
}

// ----------------------------------------- quarantine & cache degradation

using CacheFaultTest = RobustnessTest;

TEST_F(CacheFaultTest, CorruptSnapshotQuarantinedOnce) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::string dir = fresh_dir("quarantine");
  const ContextCache cache(library);
  const std::string path = cache.cache_file_path(dir);
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(64, '\x42');
  }

  const std::uint64_t quarantined_before =
      MetricsRegistry::global().counter("context_cache.quarantined").value();
  EXPECT_FALSE(cache.try_load(dir));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(quarantine_exists(path));
  EXPECT_EQ(
      MetricsRegistry::global().counter("context_cache.quarantined").value(),
      quarantined_before + 1);
  EXPECT_EQ(Diagnostics::global().count_code("cache_quarantined"), 1u);

  // The next run sees a clean miss, not a re-parse of the bad file.
  const ContextCache cold(library);
  EXPECT_FALSE(cold.try_load(dir));
  EXPECT_EQ(Diagnostics::global().count_code("cache_quarantined"), 1u);
}

TEST_F(CacheFaultTest, InjectedLoadFaultQuarantines) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::string dir = fresh_dir("loadfault");
  const ContextCache seed(library);
  seed.version_lengths(0, version_key(0, library.bins().count()));
  seed.save(dir);

  FailPoints::set("context_cache.load", "throw");
  const ContextCache cache(library);
  EXPECT_FALSE(cache.try_load(dir));
  EXPECT_GE(FailPoints::fired_count("context_cache.load"), 1u);
  EXPECT_TRUE(quarantine_exists(cache.cache_file_path(dir)));
  EXPECT_EQ(Diagnostics::global().count_code("cache_quarantined"), 1u);
}

TEST_F(CacheFaultTest, ReadFaultDoesNotQuarantineTheFile) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::string dir = fresh_dir("readfault");
  const ContextCache seed(library);
  seed.version_lengths(0, version_key(0, library.bins().count()));
  seed.save(dir);

  // Transport failure on every attempt: degrade to a cold start but leave
  // the (possibly fine) file in place.
  FailPoints::set("serialize.read", "throw");
  const ContextCache cache(library);
  EXPECT_FALSE(cache.try_load(dir));
  EXPECT_TRUE(std::filesystem::exists(cache.cache_file_path(dir)));
  EXPECT_EQ(Diagnostics::global().count_code("cache_read_failed"), 1u);
  EXPECT_EQ(Diagnostics::global().count_code("cache_quarantined"), 0u);

  // Once the transport heals, the untouched snapshot loads cleanly.
  FailPoints::clear_all();
  const ContextCache healed(library);
  EXPECT_TRUE(healed.try_load(dir));
}

TEST_F(CacheFaultTest, SaveFaultLeavesNoPartialFile) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::string dir = fresh_dir("savefault");
  const ContextCache cache(library);
  cache.version_lengths(0, version_key(0, library.bins().count()));

  FailPoints::set("context_cache.save", "throw");
  EXPECT_THROW(cache.save(dir), FailPointError);
  FailPoints::clear_all();
  EXPECT_FALSE(std::filesystem::exists(cache.cache_file_path(dir)));
  EXPECT_EQ(cache.save(dir), 1u);
}

TEST_F(CacheFaultTest, RenameFaultLeavesNoTempFiles) {
  const std::string dir = fresh_dir("renamefault");
  FailPoints::set("serialize.rename", "throw");
  EXPECT_THROW(atomic_write_file(dir + "/x.svac", "payload"), FailPointError);
  FailPoints::clear_all();
  // The temp file was cleaned up and the target never appeared.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
}

TEST_F(CacheFaultTest, CorruptWriteIsRejectedAtLoad) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::string dir = fresh_dir("corruptwrite");
  const ContextCache seed(library);
  seed.version_lengths(0, version_key(0, library.bins().count()));

  // A corrupted save goes to disk (one payload byte flipped); the
  // checksum must catch it on load and quarantine the file.
  FailPoints::set("serialize.write", "corrupt");
  seed.save(dir);
  FailPoints::clear_all();

  const ContextCache cache(library);
  EXPECT_FALSE(cache.try_load(dir));
  EXPECT_TRUE(quarantine_exists(cache.cache_file_path(dir)));
  EXPECT_EQ(cache.stats().characterized, 0u);
}

TEST_F(CacheFaultTest, RepeatedQuarantinesNeverCollide) {
  const ContextLibrary& library = shared_flow().context_library();
  const std::string dir = fresh_dir("quarantine_twice");
  const ContextCache cache(library);
  const std::string path = cache.cache_file_path(dir);
  // Two corruption episodes in a row: each quarantine must land in its
  // own uniquely-named file (pid + counter suffix), never clobber the
  // evidence of the previous one.
  for (int episode = 0; episode < 2; ++episode) {
    std::ofstream(path, std::ios::binary) << std::string(64, '\x42');
    EXPECT_FALSE(cache.try_load(dir));
  }
  EXPECT_EQ(quarantine_count(path), 2u);
}

// ------------------------------------------------- OPC graceful fallback

using OpcDegradeTest = RobustnessTest;

const CellLibrary& test_library() {
  static const CellLibrary library = build_standard_library();
  return library;
}

const OpcEngine& test_engine() {
  static const LithoProcess* proc =
      new LithoProcess(OpticsConfig{}, 90.0, 240.0);
  static const OpcEngine* engine = new OpcEngine(*proc, OpcConfig{});
  return *engine;
}

TEST_F(OpcDegradeTest, FallbackIsUniformDrawnCd) {
  const CellMaster& master = test_library().masters()[0];
  const LibraryOpcCellResult fb = library_opc_fallback(master);
  EXPECT_TRUE(fb.degraded);
  EXPECT_EQ(fb.images_simulated, 0u);
  ASSERT_EQ(fb.device_cd.size(), master.devices().size());
  for (std::size_t i = 0; i < fb.device_cd.size(); ++i) {
    EXPECT_EQ(fb.device_cd[i], master.tech().gate_length);
    EXPECT_EQ(fb.device_mask_width[i], master.tech().gate_length);
  }
}

TEST_F(OpcDegradeTest, DegradePolicyIsolatesEveryFailedCell) {
  FailPoints::set("opc.cell_solve", "throw");
  const std::vector<LibraryOpcCellResult> results =
      library_opc_all(test_library().masters(), test_engine(), {},
                      FaultPolicy::Degrade);
  ASSERT_EQ(results.size(), test_library().size());
  for (const LibraryOpcCellResult& r : results) EXPECT_TRUE(r.degraded);
  EXPECT_EQ(Diagnostics::global().count_code("opc_cell_degraded"),
            test_library().size());
}

TEST_F(OpcDegradeTest, StrictPolicyPropagatesTheFault) {
  FailPoints::set("opc.cell_solve", "throw");
  EXPECT_THROW(library_opc_all(test_library().masters(), test_engine(), {},
                               FaultPolicy::Strict),
               FailPointError);
}

TEST_F(OpcDegradeTest, KeyedProbClassifiesCellsDeterministically) {
  // prob() keyed by cell name: the same subset of cells degrades on every
  // run and every thread schedule.
  FailPoints::set("opc.cell_solve", "prob(0.8)");
  const auto first = library_opc_all(test_library().masters(), test_engine(),
                                     {}, FaultPolicy::Degrade);
  const auto second = library_opc_all(test_library().masters(), test_engine(),
                                      {}, FaultPolicy::Degrade);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].degraded, second[i].degraded) << "cell " << i;
    if (first[i].degraded) {
      EXPECT_EQ(first[i].device_cd, second[i].device_cd);
    }
  }
}

TEST_F(OpcDegradeTest, DegradedFlowSetupIsNeverPersisted) {
  const std::string dir = fresh_dir("degradedsetup");
  FailPoints::set("opc.cell_solve", "throw");
  FlowConfig cfg;
  cfg.cache_dir = dir;
  const SvaFlow flow(cfg);
  EXPECT_TRUE(flow.setup_degraded());
  EXPECT_FALSE(std::filesystem::exists(flow.setup_cache_file_path(dir)));
  FailPoints::clear_all();

  // The degraded flow still analyzes end to end with sane outputs.
  const CircuitAnalysis a = flow.analyze_benchmark("C432");
  EXPECT_GT(a.gate_count, 0u);
  EXPECT_GT(a.trad_nom_ps, 0.0);
  EXPECT_GT(a.sva_wc_ps, 0.0);
  EXPECT_GE(a.trad_wc_ps, a.trad_bc_ps);
}

TEST_F(OpcDegradeTest, StrictFlowConstructionThrows) {
  FailPoints::set("opc.cell_solve", "throw");
  FlowConfig cfg;
  cfg.fault_policy = FaultPolicy::Strict;
  EXPECT_THROW(SvaFlow{cfg}, FailPointError);
}

// ------------------------------------------------- batch fault isolation

using BatchFaultTest = RobustnessTest;

void expect_same_analysis(const CircuitAnalysis& a, const CircuitAnalysis& b,
                          const std::string& what) {
  EXPECT_EQ(a.name, b.name) << what;
  EXPECT_EQ(a.gate_count, b.gate_count) << what;
  EXPECT_EQ(a.trad_nom_ps, b.trad_nom_ps) << what;
  EXPECT_EQ(a.trad_bc_ps, b.trad_bc_ps) << what;
  EXPECT_EQ(a.trad_wc_ps, b.trad_wc_ps) << what;
  EXPECT_EQ(a.sva_nom_ps, b.sva_nom_ps) << what;
  EXPECT_EQ(a.sva_bc_ps, b.sva_bc_ps) << what;
  EXPECT_EQ(a.sva_wc_ps, b.sva_wc_ps) << what;
  EXPECT_EQ(a.arc_class_counts, b.arc_class_counts) << what;
}

TEST_F(BatchFaultTest, AllJobsFailButTheBatchSurvives) {
  const SvaFlow& flow = shared_flow();
  ThreadPool pool(2);
  const BatchRunner runner(flow, pool);
  FailPoints::set("batch.job", "throw");
  const BatchResult batch = runner.run_names({"C432", "C880"});
  ASSERT_EQ(batch.outcomes.size(), 2u);
  EXPECT_FALSE(batch.all_ok());
  EXPECT_EQ(batch.failed_count(), 2u);
  for (std::size_t i = 0; i < batch.analyses.size(); ++i) {
    EXPECT_FALSE(batch.outcomes[i].ok);
    EXPECT_NE(batch.outcomes[i].error.find("batch.job"), std::string::npos);
    // Failed slot: name kept, numbers deterministically zeroed.
    EXPECT_FALSE(batch.analyses[i].name.empty());
    EXPECT_EQ(batch.analyses[i].gate_count, 0u);
    EXPECT_EQ(batch.analyses[i].trad_wc_ps, 0.0);
  }
  EXPECT_EQ(Diagnostics::global().count_code("batch_job_failed"), 2u);
}

TEST_F(BatchFaultTest, ProbFaultClassifiesJobsDeterministically) {
  const SvaFlow& flow = shared_flow();
  const std::vector<std::string> names = {"C432", "C499", "C880", "C1355"};

  // Fault-free reference (serial analyze path).
  FailPoints::clear_all();
  std::vector<CircuitAnalysis> reference;
  for (const std::string& name : names)
    reference.push_back(flow.analyze_benchmark(name));

  FailPoints::set("batch.job", "prob(0.5)");
  ThreadPool pool(2);
  const BatchRunner runner(flow, pool);
  const BatchResult first = runner.run_names(names);
  const BatchResult second = runner.run_names(names);
  ASSERT_EQ(first.outcomes.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    // prob() is keyed by circuit name: the classification repeats exactly.
    EXPECT_EQ(first.outcomes[i].ok, second.outcomes[i].ok) << names[i];
    if (first.outcomes[i].ok) {
      // Surviving jobs are bit-identical to a fault-free run.
      expect_same_analysis(first.analyses[i], reference[i], names[i]);
      expect_same_analysis(second.analyses[i], reference[i], names[i]);
    } else {
      EXPECT_EQ(first.analyses[i].name, names[i]);
      EXPECT_EQ(first.analyses[i].gate_count, 0u);
    }
  }
}

TEST_F(BatchFaultTest, StrictBatchRaisesFirstFailureInJobOrder) {
  const SvaFlow& flow = shared_flow();
  ThreadPool pool(2);
  BatchOptions options;
  options.keep_going = false;
  const BatchRunner runner(flow, pool, options);
  FailPoints::set("batch.job", "throw");
  try {
    runner.run_names({"C432", "C880"});
    FAIL() << "expected the batch to raise";
  } catch (const Error& e) {
    // Deterministic: always the first failed job in job order, whatever
    // order the scheduler ran them in.
    EXPECT_NE(std::string(e.what()).find("batch job 0 (C432)"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(BatchFaultTest, TaskFaultSurfacesAtWaitNotTerminate) {
  ThreadPool pool(2);
  FailPoints::set("engine.task", "throw");
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i)
    group.run([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  // The injected fault fires inside the pool's task wrapper; it must be
  // captured and rethrown here, never escape a worker thread.
  EXPECT_THROW(group.wait(), FailPointError);
  EXPECT_EQ(ran.load(), 0);
}

// ----------------------------------------------- cancellation & deadlines

using CancelTest = RobustnessTest;

TEST_F(CancelTest, ExitCodeContractIsStable) {
  // Documented in README "Exit codes"; scripts/check.sh asserts on these.
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitFatal, 1);
  EXPECT_EQ(kExitUsage, 2);
  EXPECT_EQ(kExitJobsFailed, 3);
  EXPECT_EQ(kExitCancelled, 4);
}

TEST_F(CancelTest, TokenLifecycle) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.poll());
  EXPECT_EQ(token.reason(), CancelReason::None);
  token.check();  // clear token: no-op

  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.poll());
  EXPECT_EQ(token.reason(), CancelReason::Api);
  EXPECT_THROW(token.check(), CancelledError);

  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::None);
}

TEST_F(CancelTest, FirstTripsReasonWins) {
  CancelToken token;
  token.request_cancel(CancelReason::Signal, SIGINT);
  token.request_cancel(CancelReason::Deadline);
  EXPECT_EQ(token.reason(), CancelReason::Signal);
  EXPECT_EQ(token.signal_number(), SIGINT);
}

TEST_F(CancelTest, DeadlineExpiryTripsOnPoll) {
  CancelToken token;
  token.set_deadline(Deadline::after_seconds(0.0));
  // The flag itself only flips on a poll (cancelled() stays a pure load).
  EXPECT_TRUE(token.poll());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::Deadline);

  const Deadline never;
  EXPECT_FALSE(never.valid());
  EXPECT_FALSE(never.expired());
  const Deadline later = Deadline::after_seconds(3600.0);
  EXPECT_TRUE(later.valid());
  EXPECT_FALSE(later.expired());
  EXPECT_GT(later.remaining_seconds(), 3000.0);
}

TEST_F(CancelTest, CancelledErrorBypassesFaultHandlers) {
  // CancelledError is deliberately NOT an sva::Error: the degradation
  // handlers (batch keep-going, OPC fallback) catch Error and must never
  // swallow a cancellation.
  static_assert(!std::is_base_of_v<Error, CancelledError>);
  static_assert(std::is_base_of_v<std::runtime_error, CancelledError>);
}

TEST_F(CancelTest, ParallelForStopsBetweenChunks) {
  ThreadPool pool(2);
  CancelToken token;
  token.request_cancel();
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.parallel_for(
          0, 1000,
          [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
          0, &token),
      CancelledError);
  // Pre-tripped token: every chunk checks before running its indices.
  EXPECT_EQ(ran.load(), 0u);

  // A null token costs nothing and runs everything.
  pool.parallel_for(0, 100, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 100u);
}

TEST_F(CancelTest, TaskGroupSkipsBodiesAfterTrip) {
  ThreadPool pool(2);
  CancelToken token;
  token.request_cancel();
  TaskGroup group(pool, &token);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i)
    group.run([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_THROW(group.wait(), CancelledError);
  EXPECT_EQ(ran.load(), 0);
}

// ------------------------------------------------- file locks & takeover

using FileLockTest = RobustnessTest;

TEST_F(FileLockTest, ExclusionAndRelease) {
  const std::string dir = fresh_dir("filelock");
  const std::string target = dir + "/data.svac";
  FileLock first = FileLock::acquire(target);
  EXPECT_TRUE(first.held());
  EXPECT_TRUE(std::filesystem::exists(lock_sidecar_path(target)));

  // Same-process second open contends (flock is per open-file-description).
  FileLock second = FileLock::try_acquire(target, /*timeout_ms=*/50);
  EXPECT_FALSE(second.held());

  first.release();
  EXPECT_FALSE(first.held());
  FileLock third = FileLock::try_acquire(target, /*timeout_ms=*/50);
  EXPECT_TRUE(third.held());
  // The sidecar is never unlinked on release (unlink would race takeover).
  third.release();
  EXPECT_TRUE(std::filesystem::exists(lock_sidecar_path(target)));
}

TEST_F(FileLockTest, CreatesMissingCacheDirectory) {
  // The lock is taken before the write that would otherwise create the
  // cache directory, so acquire() must create it (cold first run).
  const std::string dir = fresh_dir("filelock_cold") + "/nested/cache";
  ASSERT_FALSE(std::filesystem::exists(dir));
  const FileLock lock = FileLock::acquire(dir + "/ctx.svac");
  EXPECT_TRUE(lock.held());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
}

TEST_F(FileLockTest, DeadHolderIsTakenOver) {
  const std::string dir = fresh_dir("filelock_stale");
  const std::string target = dir + "/data.svac";
  // Hold the flock (so acquire() sees "busy") but record a PID that is
  // guaranteed dead -- a reaped child -- as the holder.  That is exactly
  // the broken state a crashed process leaves on an flock-emulating
  // filesystem, and the half-timeout takeover must recover from it.
  FileLock holder = FileLock::acquire(target);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  ASSERT_EQ(::waitpid(child, nullptr, 0), child);
  std::ofstream(lock_sidecar_path(target), std::ios::trunc)
      << static_cast<long>(child) << "\n";

  const std::uint64_t takeovers_before =
      MetricsRegistry::global().counter("filelock.takeovers").value();
  const FileLock taken = FileLock::acquire(target, /*timeout_ms=*/400);
  EXPECT_TRUE(taken.held());
  EXPECT_EQ(MetricsRegistry::global().counter("filelock.takeovers").value(),
            takeovers_before + 1);
  EXPECT_GE(Diagnostics::global().count_code("lock_takeover"), 1u);
}

TEST_F(FileLockTest, LiveHolderTimesOutInsteadOfTakeover) {
  const std::string dir = fresh_dir("filelock_live");
  const std::string target = dir + "/data.svac";
  const FileLock holder = FileLock::acquire(target);
  // The sidecar records our (alive) PID: the takeover check must refuse
  // and the second acquire must time out.
  EXPECT_THROW(FileLock::acquire(target, /*timeout_ms=*/120), Error);
  EXPECT_TRUE(holder.held());
}

TEST_F(FileLockTest, InjectedLockFaultFires) {
  FailPoints::set("cache.lock", "throw");
  EXPECT_THROW(FileLock::acquire(fresh_dir("filelock_fp") + "/x"),
               FailPointError);
}

// --------------------------------------------------- checkpoint envelope

using CheckpointTest = RobustnessTest;

TEST_F(CheckpointTest, RoundTripPreservesPayload) {
  const std::string path = fresh_dir("ckpt") + "/state.ckpt";
  const std::string payload = "\x01\x02payload bytes\xff";
  write_checkpoint(path, "eco", /*content_hash=*/0xabcdefull, payload);
  EXPECT_EQ(read_checkpoint(path, "eco", 0xabcdefull), payload);
  // kAnyHash skips the identity check (used by inspection tools).
  EXPECT_EQ(read_checkpoint(path, "eco", kAnyHash), payload);
  EXPECT_EQ(checkpoint_content_hash(path, "eco"), 0xabcdefull);
}

TEST_F(CheckpointTest, MismatchesAreRefused) {
  const std::string dir = fresh_dir("ckpt_bad");
  const std::string path = dir + "/state.ckpt";
  write_checkpoint(path, "eco", 7, "payload");
  // Wrong kind (an optimize checkpoint fed to analyze --resume).
  EXPECT_THROW(read_checkpoint(path, "batch", kAnyHash), SerializeError);
  // Wrong content hash (resumed against different inputs).
  EXPECT_THROW(read_checkpoint(path, "eco", 8), SerializeError);
  // Missing file.
  EXPECT_THROW(read_checkpoint(dir + "/nope.ckpt", "eco", kAnyHash),
               FileMissingError);
  // Flipped byte: the checksum rejects it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(-1, std::ios::end);
  const int last = f.get();
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(last ^ 0x5a));
  f.close();
  EXPECT_THROW(read_checkpoint(path, "eco", kAnyHash), SerializeError);
}

TEST_F(CheckpointTest, InjectedWriteFaultLeavesNoFile) {
  const std::string path = fresh_dir("ckpt_fp") + "/state.ckpt";
  FailPoints::set("checkpoint.write", "throw");
  EXPECT_THROW(write_checkpoint(path, "eco", 1, "p"), FailPointError);
  EXPECT_FALSE(std::filesystem::exists(path));
}

// --------------------------------------- batch cancellation & resumption

using BatchCancelTest = RobustnessTest;

TEST_F(BatchCancelTest, PreTrippedTokenCancelsEverySlot) {
  const SvaFlow& flow = shared_flow();
  ThreadPool pool(2);
  CancelToken token;
  token.request_cancel();
  BatchOptions options;
  options.cancel = &token;
  const BatchRunner runner(flow, pool, options);
  const BatchResult batch = runner.run({{"C432"}, {"C880"}});
  ASSERT_EQ(batch.outcomes.size(), 2u);
  EXPECT_EQ(batch.cancelled_count(), 2u);
  // Cancelled is incomplete, not failed: no failure diagnostics, and the
  // two counts never overlap.
  EXPECT_EQ(batch.failed_count(), 0u);
  EXPECT_FALSE(batch.all_ok());
  EXPECT_EQ(Diagnostics::global().count_code("batch_job_failed"), 0u);
  for (const BatchJobOutcome& o : batch.outcomes) {
    EXPECT_TRUE(o.cancelled);
    EXPECT_FALSE(o.ok);
  }
}

TEST_F(BatchCancelTest, CheckpointResumeIsBitIdentical) {
  const SvaFlow& flow = shared_flow();
  ThreadPool pool(2);
  const std::vector<BatchJob> jobs = {{"C432"}, {"C499"}, {"C880"}};
  const BatchRunner runner(flow, pool);
  const BatchResult reference = runner.run(jobs);
  ASSERT_TRUE(reference.all_ok());

  // Interrupt after job 0: journal a partial result whose middle slot is
  // cancelled, reload it, and resume.  The merged result must equal the
  // uninterrupted reference bit for bit (final slots copied, cancelled
  // slots recomputed -- and each job is a pure function of flow+circuit).
  BatchResult partial = reference;
  partial.outcomes[1] = BatchJobOutcome{false, "cancelled", true};
  partial.analyses[1] = CircuitAnalysis{};
  partial.analyses[1].name = jobs[1].circuit;
  partial.outcomes[2] = BatchJobOutcome{false, "cancelled", true};
  partial.analyses[2] = CircuitAnalysis{};
  partial.analyses[2].name = jobs[2].circuit;

  const std::string ckpt = fresh_dir("batch_ckpt") + "/batch.ckpt";
  save_batch_checkpoint(ckpt, flow, jobs, partial);
  const BatchResult prior = load_batch_checkpoint(ckpt, flow, jobs);
  EXPECT_EQ(prior.cancelled_count(), 2u);
  EXPECT_EQ(prior.failed_count(), 0u);

  const std::uint64_t resumed_before =
      MetricsRegistry::global().counter("batch.jobs_resumed").value();
  const BatchResult resumed = runner.run(jobs, &prior);
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(MetricsRegistry::global().counter("batch.jobs_resumed").value(),
            resumed_before + 1);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    expect_same_analysis(resumed.analyses[i], reference.analyses[i],
                         jobs[i].circuit);
}

TEST_F(BatchCancelTest, CheckpointRefusesDifferentJobList) {
  const SvaFlow& flow = shared_flow();
  ThreadPool pool(2);
  const std::vector<BatchJob> jobs = {{"C432"}};
  const BatchRunner runner(flow, pool);
  const BatchResult result = runner.run(jobs);
  const std::string ckpt = fresh_dir("batch_ckpt_id") + "/batch.ckpt";
  save_batch_checkpoint(ckpt, flow, jobs, result);
  // Same file, different job list: the content hash must refuse it.
  const std::vector<BatchJob> other = {{"C880"}};
  EXPECT_THROW(load_batch_checkpoint(ckpt, flow, other), SerializeError);
  EXPECT_NE(batch_content_hash(flow, jobs), batch_content_hash(flow, other));
}

// -------------------------------------------------------------- cache GC

using CacheGcTest = RobustnessTest;

void set_age(const std::string& path, std::chrono::minutes age) {
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() - age);
}

void write_file(const std::string& path, std::size_t bytes) {
  std::ofstream(path, std::ios::binary) << std::string(bytes, 'x');
}

TEST_F(CacheGcTest, AgeRulesAndProtectedNames) {
  const std::string dir = fresh_dir("gc_age");
  write_file(dir + "/live.svac", 100);
  write_file(dir + "/old.svac", 100);
  set_age(dir + "/old.svac", std::chrono::minutes(60 * 24 * 40));
  write_file(dir + "/orphan.svac.tmp.123.4", 100);
  set_age(dir + "/orphan.svac.tmp.123.4", std::chrono::minutes(30));
  write_file(dir + "/fresh.svac.tmp.123.5", 100);
  write_file(dir + "/evidence.svac.corrupt.123.6", 100);
  set_age(dir + "/evidence.svac.corrupt.123.6",
          std::chrono::minutes(60 * 24 * 40));
  write_file(dir + "/held.svac.lock", 10);
  set_age(dir + "/held.svac.lock", std::chrono::minutes(60 * 24 * 400));
  write_file(dir + "/run.ckpt", 10);
  set_age(dir + "/run.ckpt", std::chrono::minutes(60 * 24 * 400));

  const CacheGcStats stats = run_cache_gc(dir, CacheGcConfig{});
  // Aged snapshot, aged quarantine, orphaned temp: gone.
  EXPECT_FALSE(std::filesystem::exists(dir + "/old.svac"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/orphan.svac.tmp.123.4"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/evidence.svac.corrupt.123.6"));
  // Live snapshot and fresh temp: kept.
  EXPECT_TRUE(std::filesystem::exists(dir + "/live.svac"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/fresh.svac.tmp.123.5"));
  // Locks and checkpoints are never GC targets, whatever their age.
  EXPECT_TRUE(std::filesystem::exists(dir + "/held.svac.lock"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/run.ckpt"));
  EXPECT_EQ(stats.removed_files, 3u);
}

TEST_F(CacheGcTest, SizeBudgetEvictsOldestFirst) {
  const std::string dir = fresh_dir("gc_size");
  write_file(dir + "/a.svac", 600);
  set_age(dir + "/a.svac", std::chrono::minutes(300));
  write_file(dir + "/b.svac", 600);
  set_age(dir + "/b.svac", std::chrono::minutes(200));
  write_file(dir + "/c.svac", 600);
  set_age(dir + "/c.svac", std::chrono::minutes(100));

  CacheGcConfig cfg;
  cfg.max_total_bytes = 1300;  // fits two of the three
  const CacheGcStats stats = run_cache_gc(dir, cfg);
  EXPECT_FALSE(std::filesystem::exists(dir + "/a.svac"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/b.svac"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/c.svac"));
  EXPECT_EQ(stats.removed_files, 1u);
  EXPECT_EQ(stats.removed_bytes, 600u);
  EXPECT_LE(stats.kept_bytes, cfg.max_total_bytes);

  // Missing directory: a clean no-op, not an error.
  const CacheGcStats none = run_cache_gc(dir + "/does_not_exist");
  EXPECT_EQ(none.scanned_files, 0u);
  EXPECT_EQ(none.removed_files, 0u);
}

// ------------------------------------------------------------ chaos sweep

using ChaosTest = RobustnessTest;

/// Sites whose faults touch only cache/persistence paths: every such
/// fault is retried or degrades to a cold start, so analysis results must
/// stay bit-identical to a fault-free run.
bool analysis_safe_site(const std::string& site) {
  return site.rfind("serialize.", 0) == 0 ||
         site.rfind("context_cache.", 0) == 0 || site == "flow.setup_load" ||
         site == "cache.lock";
}

TEST_F(ChaosTest, EveryCatalogueSiteSurvivesProbabilisticFaults) {
  const std::vector<std::string> names = {"C432", "C880"};

  // Fault-free seed run: builds the setup + context snapshots the chaos
  // iterations warm-start from, and the bit-identical reference.
  const std::string seed_dir = fresh_dir("chaos_seed");
  FlowConfig seed_cfg;
  seed_cfg.cache_dir = seed_dir;
  const SvaFlow seed_flow(seed_cfg);
  ASSERT_FALSE(seed_flow.setup_degraded());
  std::vector<CircuitAnalysis> reference;
  for (const std::string& name : names)
    reference.push_back(seed_flow.analyze_benchmark(name));
  seed_flow.save_context_cache(seed_dir);

  for (const std::string& site : FailPoints::catalogue()) {
    SCOPED_TRACE("failpoint " + site);
    // Fresh copy of the seeded cache per site: a quarantine in one
    // iteration must not starve the next.
    const std::string dir = fresh_dir("chaos_" + site);
    std::filesystem::copy(seed_dir, dir,
                          std::filesystem::copy_options::recursive |
                              std::filesystem::copy_options::overwrite_existing);

    FailPoints::clear_all();
    Diagnostics::global().reset();
    FailPoints::set(site, "prob(0.3)");

    // Construction must always survive under the default Degrade policy,
    // whatever the armed site does to the cache or the OPC solves.
    FlowConfig cfg;
    cfg.cache_dir = dir;
    const SvaFlow flow(cfg);
    flow.try_load_context_cache(dir);
    try {
      flow.save_context_cache(dir);
    } catch (const Error&) {
      // An injected save/write fault is an acceptable outcome; the run
      // itself continues (the CLI warns and moves on).
    }

    ThreadPool pool(2);
    const BatchRunner runner(flow, pool);
    bool batch_threw = false;
    BatchResult batch;
    try {
      batch = runner.run_names(names);
    } catch (const Error&) {
      // Only a fault in the pool's own task wrapper escapes run() under
      // keep-going; everything else is isolated per job.
      batch_threw = true;
      EXPECT_EQ(site, "engine.task");
    }
    if (batch_threw) continue;

    // Every job is classified, never silently dropped.
    ASSERT_EQ(batch.analyses.size(), names.size());
    ASSERT_EQ(batch.outcomes.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (batch.outcomes[i].ok) {
        EXPECT_EQ(batch.analyses[i].name, names[i]);
        EXPECT_GT(batch.analyses[i].gate_count, 0u);
      } else {
        EXPECT_FALSE(batch.outcomes[i].error.empty());
        EXPECT_EQ(batch.analyses[i].gate_count, 0u);
      }
    }

    if (analysis_safe_site(site)) {
      // Cache-only faults: retried or degraded to cold characterization,
      // which is bit-identical to the warm path.
      EXPECT_FALSE(flow.setup_degraded());
      for (std::size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(batch.outcomes[i].ok) << names[i];
        expect_same_analysis(batch.analyses[i], reference[i], site);
      }
    } else if (site == "batch.job") {
      // Keyed classification: a second run repeats it exactly, and the
      // surviving jobs still match the reference bit for bit.
      const BatchResult again = runner.run_names(names);
      for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(batch.outcomes[i].ok, again.outcomes[i].ok) << names[i];
        if (batch.outcomes[i].ok)
          expect_same_analysis(batch.analyses[i], reference[i], site);
      }
    }
  }
}

}  // namespace
}  // namespace sva
