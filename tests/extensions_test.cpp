// Tests for the extension modules: the Sec. 5 simplified flow, the Sec. 6
// statistical-timing and exposure-dose analyses, SRAF insertion, the
// Liberty writer, the technology mapper, and path reporting.

#include <gtest/gtest.h>

#include "cell/liberty_writer.hpp"
#include "core/exposure.hpp"
#include "core/flow.hpp"
#include "core/simplified.hpp"
#include "core/statistical.hpp"
#include "netlist/mapper.hpp"
#include "opc/sraf.hpp"
#include "sta/path_report.hpp"

namespace sva {
namespace {

const SvaFlow& flow() {
  static const SvaFlow f{FlowConfig{}};
  return f;
}

// ------------------------------------------------------------- Simplified

TEST(Simplified, BoundaryDevicesGetTraditionalCorners) {
  const std::size_t inv = flow().library().index_of("INV_X1");
  // INV's devices are all boundary devices.
  const CornerLengths c = SimplifiedCornerScale::device_corners(
      flow().context_library(), inv, 0, flow().config().budget);
  const CornerLengths trad =
      traditional_corners(90.0, flow().config().budget);
  EXPECT_DOUBLE_EQ(c.wc, trad.wc);
  EXPECT_DOUBLE_EQ(c.bc, trad.bc);
  EXPECT_DOUBLE_EQ(c.nom, trad.nom);
}

TEST(Simplified, InteriorDevicesGetTrimmedCorners) {
  const std::size_t nand3 = flow().library().index_of("NAND3_X1");
  const CellMaster& master = flow().library().master(nand3);
  std::size_t interior = 0;
  for (std::size_t d = 0; d < master.devices().size(); ++d)
    if (!master.is_boundary_device(d)) interior = d;
  const CornerLengths c = SimplifiedCornerScale::device_corners(
      flow().context_library(), nand3, interior, flow().config().budget);
  const CornerLengths trad =
      traditional_corners(90.0, flow().config().budget);
  EXPECT_LT(c.spread(), trad.spread());
}

TEST(Simplified, ReducesLessThanFullFlow) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const CircuitAnalysis full = flow().analyze(nl, p);

  const SimplifiedCornerScale bc(nl, flow().context_library(),
                                 flow().config().budget, Corner::Best);
  const SimplifiedCornerScale wc(nl, flow().context_library(),
                                 flow().config().budget, Corner::Worst);
  const double spread =
      sta.run(wc).critical_delay_ps - sta.run(bc).critical_delay_ps;
  // Still tighter than traditional, but looser than the full method.
  EXPECT_LT(spread, full.trad_spread_ps());
  EXPECT_GT(spread, full.sva_spread_ps());
}

TEST(Simplified, PlacementIndependent) {
  const Netlist nl = flow().make_benchmark("C432");
  PlacementConfig other;
  other.seed = 1234;
  const Placement p1 = flow().make_placement(nl);
  const Placement p2(nl, other);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  // The simplified scale never consults the placement, so both give the
  // same delays (same netlist, same library).
  const SimplifiedCornerScale wc(nl, flow().context_library(),
                                 flow().config().budget, Corner::Worst);
  const double d1 = sta.run(wc).critical_delay_ps;
  const double d2 = sta.run(wc).critical_delay_ps;
  EXPECT_DOUBLE_EQ(d1, d2);
}

// ------------------------------------------------------------ Statistical

TEST(Statistical, DistributionsAreDeterministicPerSeed) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const NaiveGaussianSampler sampler(nl, flow().config().budget, 90.0);
  MonteCarloConfig mc;
  mc.samples = 50;
  const DelayDistribution a = run_monte_carlo(sta, sampler, mc);
  const DelayDistribution b = run_monte_carlo(sta, sampler, mc);
  ASSERT_EQ(a.delays_ps.size(), b.delays_ps.size());
  for (std::size_t i = 0; i < a.delays_ps.size(); ++i)
    EXPECT_DOUBLE_EQ(a.delays_ps[i], b.delays_ps[i]);
}

TEST(Statistical, ContextAwareTighterThanNaive) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const auto versions = flow().bind_versions(p);

  const NaiveGaussianSampler naive(nl, flow().config().budget, 90.0);
  const ContextAwareSampler aware(nl, flow().context_library(), versions,
                                  flow().config().budget);
  MonteCarloConfig mc;
  mc.samples = 400;
  const Summary s_naive = run_monte_carlo(sta, naive, mc).summary();
  const Summary s_aware = run_monte_carlo(sta, aware, mc).summary();
  EXPECT_LT(s_aware.stddev, s_naive.stddev);
}

TEST(Statistical, DistributionInsideCornerBracket) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const CircuitAnalysis corners = flow().analyze(nl, p);
  const NaiveGaussianSampler naive(nl, flow().config().budget, 90.0);
  MonteCarloConfig mc;
  mc.samples = 400;
  const DelayDistribution dist = run_monte_carlo(sta, naive, mc);
  EXPECT_GT(dist.quantile_ps(0.001), corners.trad_bc_ps);
  EXPECT_LT(dist.quantile_ps(0.999), corners.trad_wc_ps);
}

TEST(Statistical, MeanNearNominal) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const double nominal = sta.run(UnitScale{}).critical_delay_ps;
  const NaiveGaussianSampler naive(nl, flow().config().budget, 90.0);
  MonteCarloConfig mc;
  mc.samples = 400;
  const Summary s = run_monte_carlo(sta, naive, mc).summary();
  EXPECT_NEAR(s.mean, nominal, 0.03 * nominal);
}

// --------------------------------------------------------------- Exposure

TEST(Exposure, NominalDoseHasNoShiftAndNoFlips) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const auto nps = extract_nps(p);
  const auto versions = assign_versions(nps, flow().config().bins);
  ExposureConfig config;
  config.doses = {1.0};
  const auto points =
      analyze_exposure(nl, flow().context_library(), versions, nps,
                       flow().config().budget, sta, config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].spacing_shift, 0.0);
  EXPECT_EQ(points[0].arc_flips, 0u);
}

TEST(Exposure, ShiftSignFollowsDose) {
  const Netlist nl = flow().make_benchmark("C432");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const auto nps = extract_nps(p);
  const auto versions = assign_versions(nps, flow().config().bins);
  ExposureConfig config;
  config.doses = {0.9, 1.1};
  const auto points =
      analyze_exposure(nl, flow().context_library(), versions, nps,
                       flow().config().budget, sta, config);
  EXPECT_LT(points[0].spacing_shift, 0.0);  // underexposure shrinks gaps
  EXPECT_GT(points[1].spacing_shift, 0.0);
}

TEST(Exposure, LargeShiftFlipsArcs) {
  const Netlist nl = flow().make_benchmark("C880");
  const Placement p = flow().make_placement(nl);
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const auto nps = extract_nps(p);
  const auto versions = assign_versions(nps, flow().config().bins);
  ExposureConfig config;
  config.doses = {0.4};  // extreme underexposure
  const auto points =
      analyze_exposure(nl, flow().context_library(), versions, nps,
                       flow().config().budget, sta, config);
  EXPECT_GT(points[0].arc_flips, 0u);
}

// ------------------------------------------------------------------ SRAF

OpcProblem iso_lines(Nm spacing, std::size_t count) {
  OpcProblem problem;
  for (std::size_t k = 0; k < count; ++k) {
    OpcLine line;
    line.drawn_lo = static_cast<double>(k) * (90.0 + spacing);
    line.drawn_hi = line.drawn_lo + 90.0;
    line.mask_lo = line.drawn_lo;
    line.mask_hi = line.drawn_hi;
    line.tag = static_cast<long>(k);
    problem.lines.push_back(line);
  }
  return problem;
}

TEST(Sraf, NoInsertionInDenseGaps) {
  const auto assisted = insert_srafs(iso_lines(200.0, 5));
  EXPECT_EQ(count_srafs(assisted), 0u);
}

TEST(Sraf, SingleBarInMediumGaps) {
  const auto assisted = insert_srafs(iso_lines(400.0, 3));
  EXPECT_EQ(count_srafs(assisted), 2u);  // one per gap
}

TEST(Sraf, TwoBarsInWideGaps) {
  const auto assisted = insert_srafs(iso_lines(700.0, 3));
  EXPECT_EQ(count_srafs(assisted), 4u);
}

TEST(Sraf, GeometryRespectsRules) {
  const SrafConfig config;
  const auto assisted = insert_srafs(iso_lines(700.0, 3), config);
  assisted.validate();
  for (std::size_t i = 1; i < assisted.lines.size(); ++i) {
    const Nm space =
        assisted.lines[i].drawn_lo - assisted.lines[i - 1].drawn_hi;
    EXPECT_GE(space, config.min_space_between - 1e-9);
  }
}

TEST(Sraf, BarsDoNotPrint) {
  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const OpcEngine engine(proc, OpcConfig{});
  const auto assisted = insert_srafs(iso_lines(700.0, 5));
  const auto result = engine.measure(assisted);
  for (const auto& lr : result.lines)
    if (lr.line.tag == kSrafTag) {
      EXPECT_LT(lr.printed_cd, 20.0);
    }
}

TEST(Sraf, BarsPullIsoTowardDense) {
  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const OpcEngine engine(proc, OpcConfig{});
  const auto plain = iso_lines(600.0, 5);
  const auto assisted = insert_srafs(plain);
  const Nm cd_plain = engine.measure(plain).by_tag(2).printed_cd;
  const Nm cd_sraf = engine.measure(assisted).by_tag(2).printed_cd;
  // Isolated lines print thin; assist bars must pull the CD up, toward
  // the dense (drawn) value.
  EXPECT_GT(cd_sraf, cd_plain);
  EXPECT_LE(cd_sraf, 100.0);
}

TEST(Sraf, EngineDoesNotMoveBars) {
  const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  const OpcEngine engine(proc, OpcConfig{});
  const auto assisted = insert_srafs(iso_lines(600.0, 5));
  const auto corrected = engine.correct(assisted);
  for (const auto& lr : corrected.lines) {
    if (lr.line.tag != kSrafTag) continue;
    EXPECT_DOUBLE_EQ(lr.line.mask_lo, lr.line.drawn_lo);
    EXPECT_DOUBLE_EQ(lr.line.mask_hi, lr.line.drawn_hi);
  }
}

// ---------------------------------------------------------------- Liberty

TEST(Liberty, BaseLibraryStructure) {
  const std::string lib = to_liberty(flow().characterized(), "sva90");
  EXPECT_NE(lib.find("library (sva90)"), std::string::npos);
  EXPECT_NE(lib.find("cell (INV_X1)"), std::string::npos);
  EXPECT_NE(lib.find("cell (XOR2_X1)"), std::string::npos);
  EXPECT_NE(lib.find("lu_table_template"), std::string::npos);
  EXPECT_NE(lib.find("related_pin : \"A\""), std::string::npos);
  EXPECT_NE(lib.find("cell_rise"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(lib.begin(), lib.end(), '{'),
            std::count(lib.begin(), lib.end(), '}'));
}

TEST(Liberty, ExpandedLibraryHas81Versions) {
  const std::string lib = to_liberty_expanded(
      flow().characterized(), flow().context_library(), "sva90_ctx");
  // Every master appears once per version.
  std::size_t count = 0;
  std::string needle = "cell (INV_X1_v";
  for (std::size_t pos = lib.find(needle); pos != std::string::npos;
       pos = lib.find(needle, pos + 1))
    ++count;
  EXPECT_EQ(count, 81u);
  EXPECT_NE(lib.find("cell (NAND2_X1_v0000)"), std::string::npos);
  EXPECT_NE(lib.find("cell (NAND2_X1_v2222)"), std::string::npos);
}

TEST(Liberty, VersionSuffixFormat) {
  EXPECT_EQ(version_suffix(VersionKey{0, 2, 1, 2}), "_v0212");
}

// ----------------------------------------------------------------- Mapper

TEST(Mapper, SimpleAndGate) {
  BoolNetwork net;
  const auto a = net.add_input("a");
  const auto b = net.add_input("b");
  net.mark_output(net.add_op("y", BoolOp::And, {a, b}));
  const Netlist mapped = map_to_library(net, flow().library(), "and2");
  mapped.validate();
  // AND = NAND2 + INV.
  EXPECT_EQ(mapped.gates().size(), 2u);
}

TEST(Mapper, WideAndDecomposes) {
  BoolNetwork net;
  std::vector<std::size_t> ins;
  for (int i = 0; i < 7; ++i)
    ins.push_back(net.add_input("i" + std::to_string(i)));
  net.mark_output(net.add_op("y", BoolOp::And, ins));
  const Netlist mapped = map_to_library(net, flow().library(), "and7");
  mapped.validate();
  EXPECT_EQ(mapped.primary_input_count(), 7u);
  EXPECT_EQ(mapped.primary_output_count(), 1u);
  // Tree of NAND2/NAND3 + INVs; a handful of gates, several levels.
  EXPECT_GE(mapped.gates().size(), 4u);
}

TEST(Mapper, XorChain) {
  BoolNetwork net;
  const auto a = net.add_input("a");
  const auto b = net.add_input("b");
  const auto c = net.add_input("c");
  net.mark_output(net.add_op("p", BoolOp::Xor, {a, b, c}));
  const Netlist mapped = map_to_library(net, flow().library(), "parity3");
  EXPECT_EQ(mapped.gates().size(), 2u);  // two XOR2s
  for (const auto& g : mapped.gates())
    EXPECT_EQ(flow().library().master(g.cell_index).name(), "XOR2_X1");
}

TEST(Mapper, NorAndNotMapDirectly) {
  BoolNetwork net;
  const auto a = net.add_input("a");
  const auto b = net.add_input("b");
  const auto n = net.add_op("n", BoolOp::Nor, {a, b});
  net.mark_output(net.add_op("y", BoolOp::Not, {n}));
  const Netlist mapped = map_to_library(net, flow().library(), "nor_not");
  mapped.validate();
  // NOR = NOR2 + INV + INV (structural, unoptimized) -- at least the NOR2
  // must appear.
  bool has_nor = false;
  for (const auto& g : mapped.gates())
    has_nor |=
        flow().library().master(g.cell_index).name() == "NOR2_X1";
  EXPECT_TRUE(has_nor);
}

TEST(Mapper, ValidatesArity) {
  BoolNetwork net;
  const auto a = net.add_input("a");
  net.mark_output(net.add_op("y", BoolOp::And, {a, a}));
  EXPECT_NO_THROW(net.validate());
  BoolNetwork bad;
  const auto x = bad.add_input("x");
  bad.mark_output(bad.add_op("y", BoolOp::Not, {x, x}));
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(Mapper, MappedDesignRunsThroughFlow) {
  BoolNetwork net;
  std::vector<std::size_t> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(net.add_input("i" + std::to_string(i)));
  const auto x = net.add_op("x", BoolOp::And, {ins[0], ins[1], ins[2]});
  const auto y = net.add_op("y", BoolOp::Or, {ins[3], ins[4], ins[5]});
  net.mark_output(net.add_op("z", BoolOp::Xor, {x, y}));
  const Netlist mapped = map_to_library(net, flow().library(), "mixed");
  const Placement placement = flow().make_placement(mapped);
  const CircuitAnalysis a = flow().analyze(mapped, placement);
  EXPECT_GT(a.uncertainty_reduction(), 0.0);
}

// ------------------------------------------------------------ Path report

TEST(PathReport, WorstPathsRankedAndConnected) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  const auto paths = worst_paths(nl, sta, scale, 5);
  ASSERT_LE(paths.size(), 5u);
  ASSERT_FALSE(paths.empty());
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i - 1].arrival_ps, paths[i].arrival_ps);
  // Worst path matches the STA's critical delay.
  const StaResult r = sta.run(scale);
  EXPECT_DOUBLE_EQ(paths[0].arrival_ps, r.critical_delay_ps);
}

TEST(PathReport, RenderContainsEndpoints) {
  const Netlist nl = flow().make_benchmark("C432");
  const Sta sta(nl, flow().characterized(), flow().config().sta);
  const UnitScale scale;
  const auto paths = worst_paths(nl, sta, scale, 3);
  const StaResult r = sta.run(scale);
  const std::string report = render_paths(nl, paths, r);
  EXPECT_NE(report.find("Path 1:"), std::string::npos);
  EXPECT_NE(report.find("arrival"), std::string::npos);
}

}  // namespace
}  // namespace sva
