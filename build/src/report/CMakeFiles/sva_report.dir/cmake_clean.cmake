file(REMOVE_RECURSE
  "CMakeFiles/sva_report.dir/ascii_plot.cpp.o"
  "CMakeFiles/sva_report.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/sva_report.dir/csv.cpp.o"
  "CMakeFiles/sva_report.dir/csv.cpp.o.d"
  "CMakeFiles/sva_report.dir/table.cpp.o"
  "CMakeFiles/sva_report.dir/table.cpp.o.d"
  "libsva_report.a"
  "libsva_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
