# Empty compiler generated dependencies file for sva_report.
# This may be replaced when dependencies are built.
