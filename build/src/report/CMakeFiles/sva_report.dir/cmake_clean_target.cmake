file(REMOVE_RECURSE
  "libsva_report.a"
)
