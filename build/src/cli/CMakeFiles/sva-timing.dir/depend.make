# Empty dependencies file for sva-timing.
# This may be replaced when dependencies are built.
