file(REMOVE_RECURSE
  "CMakeFiles/sva-timing.dir/main.cpp.o"
  "CMakeFiles/sva-timing.dir/main.cpp.o.d"
  "sva-timing"
  "sva-timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva-timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
