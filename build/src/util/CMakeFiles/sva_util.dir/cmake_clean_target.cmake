file(REMOVE_RECURSE
  "libsva_util.a"
)
