# Empty compiler generated dependencies file for sva_util.
# This may be replaced when dependencies are built.
