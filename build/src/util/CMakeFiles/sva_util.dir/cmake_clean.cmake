file(REMOVE_RECURSE
  "CMakeFiles/sva_util.dir/interp.cpp.o"
  "CMakeFiles/sva_util.dir/interp.cpp.o.d"
  "CMakeFiles/sva_util.dir/logging.cpp.o"
  "CMakeFiles/sva_util.dir/logging.cpp.o.d"
  "CMakeFiles/sva_util.dir/rng.cpp.o"
  "CMakeFiles/sva_util.dir/rng.cpp.o.d"
  "CMakeFiles/sva_util.dir/stats.cpp.o"
  "CMakeFiles/sva_util.dir/stats.cpp.o.d"
  "CMakeFiles/sva_util.dir/strings.cpp.o"
  "CMakeFiles/sva_util.dir/strings.cpp.o.d"
  "libsva_util.a"
  "libsva_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
