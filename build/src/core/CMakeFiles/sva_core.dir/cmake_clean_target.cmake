file(REMOVE_RECURSE
  "libsva_core.a"
)
