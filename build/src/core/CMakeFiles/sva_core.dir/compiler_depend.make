# Empty compiler generated dependencies file for sva_core.
# This may be replaced when dependencies are built.
