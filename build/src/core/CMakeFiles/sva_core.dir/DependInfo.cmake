
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/budget_calibration.cpp" "src/core/CMakeFiles/sva_core.dir/budget_calibration.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/budget_calibration.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/sva_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/compensation.cpp" "src/core/CMakeFiles/sva_core.dir/compensation.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/compensation.cpp.o.d"
  "/root/repo/src/core/corners.cpp" "src/core/CMakeFiles/sva_core.dir/corners.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/corners.cpp.o.d"
  "/root/repo/src/core/exposure.cpp" "src/core/CMakeFiles/sva_core.dir/exposure.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/exposure.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/sva_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/leakage.cpp" "src/core/CMakeFiles/sva_core.dir/leakage.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/leakage.cpp.o.d"
  "/root/repo/src/core/scales.cpp" "src/core/CMakeFiles/sva_core.dir/scales.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/scales.cpp.o.d"
  "/root/repo/src/core/simplified.cpp" "src/core/CMakeFiles/sva_core.dir/simplified.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/simplified.cpp.o.d"
  "/root/repo/src/core/statistical.cpp" "src/core/CMakeFiles/sva_core.dir/statistical.cpp.o" "gcc" "src/core/CMakeFiles/sva_core.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/sva_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/sva_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sva_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sva_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/sva_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/sva_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sva_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
