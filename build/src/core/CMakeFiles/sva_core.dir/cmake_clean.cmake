file(REMOVE_RECURSE
  "CMakeFiles/sva_core.dir/budget_calibration.cpp.o"
  "CMakeFiles/sva_core.dir/budget_calibration.cpp.o.d"
  "CMakeFiles/sva_core.dir/classify.cpp.o"
  "CMakeFiles/sva_core.dir/classify.cpp.o.d"
  "CMakeFiles/sva_core.dir/compensation.cpp.o"
  "CMakeFiles/sva_core.dir/compensation.cpp.o.d"
  "CMakeFiles/sva_core.dir/corners.cpp.o"
  "CMakeFiles/sva_core.dir/corners.cpp.o.d"
  "CMakeFiles/sva_core.dir/exposure.cpp.o"
  "CMakeFiles/sva_core.dir/exposure.cpp.o.d"
  "CMakeFiles/sva_core.dir/flow.cpp.o"
  "CMakeFiles/sva_core.dir/flow.cpp.o.d"
  "CMakeFiles/sva_core.dir/leakage.cpp.o"
  "CMakeFiles/sva_core.dir/leakage.cpp.o.d"
  "CMakeFiles/sva_core.dir/scales.cpp.o"
  "CMakeFiles/sva_core.dir/scales.cpp.o.d"
  "CMakeFiles/sva_core.dir/simplified.cpp.o"
  "CMakeFiles/sva_core.dir/simplified.cpp.o.d"
  "CMakeFiles/sva_core.dir/statistical.cpp.o"
  "CMakeFiles/sva_core.dir/statistical.cpp.o.d"
  "libsva_core.a"
  "libsva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
