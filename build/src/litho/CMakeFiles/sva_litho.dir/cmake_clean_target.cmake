file(REMOVE_RECURSE
  "libsva_litho.a"
)
