# Empty compiler generated dependencies file for sva_litho.
# This may be replaced when dependencies are built.
