
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/aerial.cpp" "src/litho/CMakeFiles/sva_litho.dir/aerial.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/aerial.cpp.o.d"
  "/root/repo/src/litho/bossung.cpp" "src/litho/CMakeFiles/sva_litho.dir/bossung.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/bossung.cpp.o.d"
  "/root/repo/src/litho/cd_model.cpp" "src/litho/CMakeFiles/sva_litho.dir/cd_model.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/cd_model.cpp.o.d"
  "/root/repo/src/litho/focus_response.cpp" "src/litho/CMakeFiles/sva_litho.dir/focus_response.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/focus_response.cpp.o.d"
  "/root/repo/src/litho/mask1d.cpp" "src/litho/CMakeFiles/sva_litho.dir/mask1d.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/mask1d.cpp.o.d"
  "/root/repo/src/litho/meef.cpp" "src/litho/CMakeFiles/sva_litho.dir/meef.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/meef.cpp.o.d"
  "/root/repo/src/litho/optics.cpp" "src/litho/CMakeFiles/sva_litho.dir/optics.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/optics.cpp.o.d"
  "/root/repo/src/litho/pitch_curve.cpp" "src/litho/CMakeFiles/sva_litho.dir/pitch_curve.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/pitch_curve.cpp.o.d"
  "/root/repo/src/litho/process_window.cpp" "src/litho/CMakeFiles/sva_litho.dir/process_window.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/process_window.cpp.o.d"
  "/root/repo/src/litho/resist.cpp" "src/litho/CMakeFiles/sva_litho.dir/resist.cpp.o" "gcc" "src/litho/CMakeFiles/sva_litho.dir/resist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
