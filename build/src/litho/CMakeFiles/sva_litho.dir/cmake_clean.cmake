file(REMOVE_RECURSE
  "CMakeFiles/sva_litho.dir/aerial.cpp.o"
  "CMakeFiles/sva_litho.dir/aerial.cpp.o.d"
  "CMakeFiles/sva_litho.dir/bossung.cpp.o"
  "CMakeFiles/sva_litho.dir/bossung.cpp.o.d"
  "CMakeFiles/sva_litho.dir/cd_model.cpp.o"
  "CMakeFiles/sva_litho.dir/cd_model.cpp.o.d"
  "CMakeFiles/sva_litho.dir/focus_response.cpp.o"
  "CMakeFiles/sva_litho.dir/focus_response.cpp.o.d"
  "CMakeFiles/sva_litho.dir/mask1d.cpp.o"
  "CMakeFiles/sva_litho.dir/mask1d.cpp.o.d"
  "CMakeFiles/sva_litho.dir/meef.cpp.o"
  "CMakeFiles/sva_litho.dir/meef.cpp.o.d"
  "CMakeFiles/sva_litho.dir/optics.cpp.o"
  "CMakeFiles/sva_litho.dir/optics.cpp.o.d"
  "CMakeFiles/sva_litho.dir/pitch_curve.cpp.o"
  "CMakeFiles/sva_litho.dir/pitch_curve.cpp.o.d"
  "CMakeFiles/sva_litho.dir/process_window.cpp.o"
  "CMakeFiles/sva_litho.dir/process_window.cpp.o.d"
  "CMakeFiles/sva_litho.dir/resist.cpp.o"
  "CMakeFiles/sva_litho.dir/resist.cpp.o.d"
  "libsva_litho.a"
  "libsva_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
