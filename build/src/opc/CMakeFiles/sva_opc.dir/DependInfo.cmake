
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opc/cutline.cpp" "src/opc/CMakeFiles/sva_opc.dir/cutline.cpp.o" "gcc" "src/opc/CMakeFiles/sva_opc.dir/cutline.cpp.o.d"
  "/root/repo/src/opc/engine.cpp" "src/opc/CMakeFiles/sva_opc.dir/engine.cpp.o" "gcc" "src/opc/CMakeFiles/sva_opc.dir/engine.cpp.o.d"
  "/root/repo/src/opc/pitch_table.cpp" "src/opc/CMakeFiles/sva_opc.dir/pitch_table.cpp.o" "gcc" "src/opc/CMakeFiles/sva_opc.dir/pitch_table.cpp.o.d"
  "/root/repo/src/opc/sraf.cpp" "src/opc/CMakeFiles/sva_opc.dir/sraf.cpp.o" "gcc" "src/opc/CMakeFiles/sva_opc.dir/sraf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litho/CMakeFiles/sva_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
