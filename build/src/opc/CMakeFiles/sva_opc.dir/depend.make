# Empty dependencies file for sva_opc.
# This may be replaced when dependencies are built.
