file(REMOVE_RECURSE
  "libsva_opc.a"
)
