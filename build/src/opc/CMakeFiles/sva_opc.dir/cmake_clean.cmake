file(REMOVE_RECURSE
  "CMakeFiles/sva_opc.dir/cutline.cpp.o"
  "CMakeFiles/sva_opc.dir/cutline.cpp.o.d"
  "CMakeFiles/sva_opc.dir/engine.cpp.o"
  "CMakeFiles/sva_opc.dir/engine.cpp.o.d"
  "CMakeFiles/sva_opc.dir/pitch_table.cpp.o"
  "CMakeFiles/sva_opc.dir/pitch_table.cpp.o.d"
  "CMakeFiles/sva_opc.dir/sraf.cpp.o"
  "CMakeFiles/sva_opc.dir/sraf.cpp.o.d"
  "libsva_opc.a"
  "libsva_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
