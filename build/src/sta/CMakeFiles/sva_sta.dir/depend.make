# Empty dependencies file for sva_sta.
# This may be replaced when dependencies are built.
