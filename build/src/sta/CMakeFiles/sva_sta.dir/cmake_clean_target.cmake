file(REMOVE_RECURSE
  "libsva_sta.a"
)
