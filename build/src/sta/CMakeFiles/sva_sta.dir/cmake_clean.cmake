file(REMOVE_RECURSE
  "CMakeFiles/sva_sta.dir/path_report.cpp.o"
  "CMakeFiles/sva_sta.dir/path_report.cpp.o.d"
  "CMakeFiles/sva_sta.dir/sta.cpp.o"
  "CMakeFiles/sva_sta.dir/sta.cpp.o.d"
  "libsva_sta.a"
  "libsva_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
