# Empty dependencies file for sva_cell.
# This may be replaced when dependencies are built.
