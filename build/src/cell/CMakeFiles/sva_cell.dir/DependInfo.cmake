
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/cell_master.cpp" "src/cell/CMakeFiles/sva_cell.dir/cell_master.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/cell_master.cpp.o.d"
  "/root/repo/src/cell/characterize.cpp" "src/cell/CMakeFiles/sva_cell.dir/characterize.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/characterize.cpp.o.d"
  "/root/repo/src/cell/context_library.cpp" "src/cell/CMakeFiles/sva_cell.dir/context_library.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/context_library.cpp.o.d"
  "/root/repo/src/cell/liberty_reader.cpp" "src/cell/CMakeFiles/sva_cell.dir/liberty_reader.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/liberty_reader.cpp.o.d"
  "/root/repo/src/cell/liberty_writer.cpp" "src/cell/CMakeFiles/sva_cell.dir/liberty_writer.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/liberty_writer.cpp.o.d"
  "/root/repo/src/cell/library.cpp" "src/cell/CMakeFiles/sva_cell.dir/library.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/library.cpp.o.d"
  "/root/repo/src/cell/library_opc.cpp" "src/cell/CMakeFiles/sva_cell.dir/library_opc.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/library_opc.cpp.o.d"
  "/root/repo/src/cell/nldm.cpp" "src/cell/CMakeFiles/sva_cell.dir/nldm.cpp.o" "gcc" "src/cell/CMakeFiles/sva_cell.dir/nldm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opc/CMakeFiles/sva_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/sva_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
