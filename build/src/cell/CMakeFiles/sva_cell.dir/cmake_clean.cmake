file(REMOVE_RECURSE
  "CMakeFiles/sva_cell.dir/cell_master.cpp.o"
  "CMakeFiles/sva_cell.dir/cell_master.cpp.o.d"
  "CMakeFiles/sva_cell.dir/characterize.cpp.o"
  "CMakeFiles/sva_cell.dir/characterize.cpp.o.d"
  "CMakeFiles/sva_cell.dir/context_library.cpp.o"
  "CMakeFiles/sva_cell.dir/context_library.cpp.o.d"
  "CMakeFiles/sva_cell.dir/liberty_reader.cpp.o"
  "CMakeFiles/sva_cell.dir/liberty_reader.cpp.o.d"
  "CMakeFiles/sva_cell.dir/liberty_writer.cpp.o"
  "CMakeFiles/sva_cell.dir/liberty_writer.cpp.o.d"
  "CMakeFiles/sva_cell.dir/library.cpp.o"
  "CMakeFiles/sva_cell.dir/library.cpp.o.d"
  "CMakeFiles/sva_cell.dir/library_opc.cpp.o"
  "CMakeFiles/sva_cell.dir/library_opc.cpp.o.d"
  "CMakeFiles/sva_cell.dir/nldm.cpp.o"
  "CMakeFiles/sva_cell.dir/nldm.cpp.o.d"
  "libsva_cell.a"
  "libsva_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
