file(REMOVE_RECURSE
  "libsva_cell.a"
)
