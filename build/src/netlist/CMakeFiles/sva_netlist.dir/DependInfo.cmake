
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_format.cpp" "src/netlist/CMakeFiles/sva_netlist.dir/bench_format.cpp.o" "gcc" "src/netlist/CMakeFiles/sva_netlist.dir/bench_format.cpp.o.d"
  "/root/repo/src/netlist/iscas85.cpp" "src/netlist/CMakeFiles/sva_netlist.dir/iscas85.cpp.o" "gcc" "src/netlist/CMakeFiles/sva_netlist.dir/iscas85.cpp.o.d"
  "/root/repo/src/netlist/mapper.cpp" "src/netlist/CMakeFiles/sva_netlist.dir/mapper.cpp.o" "gcc" "src/netlist/CMakeFiles/sva_netlist.dir/mapper.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/sva_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/sva_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/sva_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/sva_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/sva_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/sva_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/sva_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
