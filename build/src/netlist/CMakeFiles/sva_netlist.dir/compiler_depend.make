# Empty compiler generated dependencies file for sva_netlist.
# This may be replaced when dependencies are built.
