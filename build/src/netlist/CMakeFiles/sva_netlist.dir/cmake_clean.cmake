file(REMOVE_RECURSE
  "CMakeFiles/sva_netlist.dir/bench_format.cpp.o"
  "CMakeFiles/sva_netlist.dir/bench_format.cpp.o.d"
  "CMakeFiles/sva_netlist.dir/iscas85.cpp.o"
  "CMakeFiles/sva_netlist.dir/iscas85.cpp.o.d"
  "CMakeFiles/sva_netlist.dir/mapper.cpp.o"
  "CMakeFiles/sva_netlist.dir/mapper.cpp.o.d"
  "CMakeFiles/sva_netlist.dir/netlist.cpp.o"
  "CMakeFiles/sva_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/sva_netlist.dir/verilog.cpp.o"
  "CMakeFiles/sva_netlist.dir/verilog.cpp.o.d"
  "libsva_netlist.a"
  "libsva_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
