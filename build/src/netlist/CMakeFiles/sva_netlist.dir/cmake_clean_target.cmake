file(REMOVE_RECURSE
  "libsva_netlist.a"
)
