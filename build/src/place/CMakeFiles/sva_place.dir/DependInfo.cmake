
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/context.cpp" "src/place/CMakeFiles/sva_place.dir/context.cpp.o" "gcc" "src/place/CMakeFiles/sva_place.dir/context.cpp.o.d"
  "/root/repo/src/place/dummy_fill.cpp" "src/place/CMakeFiles/sva_place.dir/dummy_fill.cpp.o" "gcc" "src/place/CMakeFiles/sva_place.dir/dummy_fill.cpp.o.d"
  "/root/repo/src/place/fullchip_opc.cpp" "src/place/CMakeFiles/sva_place.dir/fullchip_opc.cpp.o" "gcc" "src/place/CMakeFiles/sva_place.dir/fullchip_opc.cpp.o.d"
  "/root/repo/src/place/placement.cpp" "src/place/CMakeFiles/sva_place.dir/placement.cpp.o" "gcc" "src/place/CMakeFiles/sva_place.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sva_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sva_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/sva_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/sva_litho.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
