file(REMOVE_RECURSE
  "libsva_place.a"
)
