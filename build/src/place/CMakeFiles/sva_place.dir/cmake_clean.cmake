file(REMOVE_RECURSE
  "CMakeFiles/sva_place.dir/context.cpp.o"
  "CMakeFiles/sva_place.dir/context.cpp.o.d"
  "CMakeFiles/sva_place.dir/dummy_fill.cpp.o"
  "CMakeFiles/sva_place.dir/dummy_fill.cpp.o.d"
  "CMakeFiles/sva_place.dir/fullchip_opc.cpp.o"
  "CMakeFiles/sva_place.dir/fullchip_opc.cpp.o.d"
  "CMakeFiles/sva_place.dir/placement.cpp.o"
  "CMakeFiles/sva_place.dir/placement.cpp.o.d"
  "libsva_place.a"
  "libsva_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
