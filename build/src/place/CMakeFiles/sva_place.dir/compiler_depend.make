# Empty compiler generated dependencies file for sva_place.
# This may be replaced when dependencies are built.
