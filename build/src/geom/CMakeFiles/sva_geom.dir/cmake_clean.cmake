file(REMOVE_RECURSE
  "CMakeFiles/sva_geom.dir/drc.cpp.o"
  "CMakeFiles/sva_geom.dir/drc.cpp.o.d"
  "CMakeFiles/sva_geom.dir/layout.cpp.o"
  "CMakeFiles/sva_geom.dir/layout.cpp.o.d"
  "CMakeFiles/sva_geom.dir/spacing.cpp.o"
  "CMakeFiles/sva_geom.dir/spacing.cpp.o.d"
  "libsva_geom.a"
  "libsva_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sva_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
