# Empty dependencies file for sva_geom.
# This may be replaced when dependencies are built.
