
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/drc.cpp" "src/geom/CMakeFiles/sva_geom.dir/drc.cpp.o" "gcc" "src/geom/CMakeFiles/sva_geom.dir/drc.cpp.o.d"
  "/root/repo/src/geom/layout.cpp" "src/geom/CMakeFiles/sva_geom.dir/layout.cpp.o" "gcc" "src/geom/CMakeFiles/sva_geom.dir/layout.cpp.o.d"
  "/root/repo/src/geom/spacing.cpp" "src/geom/CMakeFiles/sva_geom.dir/spacing.cpp.o" "gcc" "src/geom/CMakeFiles/sva_geom.dir/spacing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
