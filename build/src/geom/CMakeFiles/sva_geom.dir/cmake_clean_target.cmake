file(REMOVE_RECURSE
  "libsva_geom.a"
)
