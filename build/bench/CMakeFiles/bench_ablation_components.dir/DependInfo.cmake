
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_components.cpp" "bench/CMakeFiles/bench_ablation_components.dir/ablation_components.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_components.dir/ablation_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/sva_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/sva_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sva_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/sva_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/sva_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/sva_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sva_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sva_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
