# Empty dependencies file for bench_exposure.
# This may be replaced when dependencies are built.
