file(REMOVE_RECURSE
  "CMakeFiles/bench_exposure.dir/exposure.cpp.o"
  "CMakeFiles/bench_exposure.dir/exposure.cpp.o.d"
  "bench_exposure"
  "bench_exposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
