# Empty compiler generated dependencies file for bench_statistical.
# This may be replaced when dependencies are built.
