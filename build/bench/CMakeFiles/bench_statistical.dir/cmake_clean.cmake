file(REMOVE_RECURSE
  "CMakeFiles/bench_statistical.dir/statistical.cpp.o"
  "CMakeFiles/bench_statistical.dir/statistical.cpp.o.d"
  "bench_statistical"
  "bench_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
