# Empty dependencies file for bench_fig2_bossung.
# This may be replaced when dependencies are built.
