file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bossung.dir/fig2_bossung.cpp.o"
  "CMakeFiles/bench_fig2_bossung.dir/fig2_bossung.cpp.o.d"
  "bench_fig2_bossung"
  "bench_fig2_bossung.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bossung.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
