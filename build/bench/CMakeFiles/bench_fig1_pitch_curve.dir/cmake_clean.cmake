file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pitch_curve.dir/fig1_pitch_curve.cpp.o"
  "CMakeFiles/bench_fig1_pitch_curve.dir/fig1_pitch_curve.cpp.o.d"
  "bench_fig1_pitch_curve"
  "bench_fig1_pitch_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pitch_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
