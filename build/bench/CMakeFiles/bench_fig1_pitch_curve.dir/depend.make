# Empty dependencies file for bench_fig1_pitch_curve.
# This may be replaced when dependencies are built.
