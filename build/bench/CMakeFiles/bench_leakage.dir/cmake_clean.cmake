file(REMOVE_RECURSE
  "CMakeFiles/bench_leakage.dir/leakage.cpp.o"
  "CMakeFiles/bench_leakage.dir/leakage.cpp.o.d"
  "bench_leakage"
  "bench_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
