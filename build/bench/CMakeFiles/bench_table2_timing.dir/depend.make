# Empty dependencies file for bench_table2_timing.
# This may be replaced when dependencies are built.
