file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_timing.dir/table2_timing.cpp.o"
  "CMakeFiles/bench_table2_timing.dir/table2_timing.cpp.o.d"
  "bench_table2_timing"
  "bench_table2_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
