file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arclabel.dir/ablation_arclabel.cpp.o"
  "CMakeFiles/bench_ablation_arclabel.dir/ablation_arclabel.cpp.o.d"
  "bench_ablation_arclabel"
  "bench_ablation_arclabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arclabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
