# Empty compiler generated dependencies file for bench_ablation_arclabel.
# This may be replaced when dependencies are built.
