file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_opc.dir/table1_opc.cpp.o"
  "CMakeFiles/bench_table1_opc.dir/table1_opc.cpp.o.d"
  "bench_table1_opc"
  "bench_table1_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
