# Empty dependencies file for bench_table1_opc.
# This may be replaced when dependencies are built.
