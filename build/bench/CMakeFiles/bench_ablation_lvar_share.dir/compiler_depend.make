# Empty compiler generated dependencies file for bench_ablation_lvar_share.
# This may be replaced when dependencies are built.
