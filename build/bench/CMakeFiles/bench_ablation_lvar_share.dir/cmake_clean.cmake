file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lvar_share.dir/ablation_lvar_share.cpp.o"
  "CMakeFiles/bench_ablation_lvar_share.dir/ablation_lvar_share.cpp.o.d"
  "bench_ablation_lvar_share"
  "bench_ablation_lvar_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lvar_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
