# Empty dependencies file for bench_systematic_fraction.
# This may be replaced when dependencies are built.
