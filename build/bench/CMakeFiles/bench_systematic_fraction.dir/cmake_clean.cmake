file(REMOVE_RECURSE
  "CMakeFiles/bench_systematic_fraction.dir/systematic_fraction.cpp.o"
  "CMakeFiles/bench_systematic_fraction.dir/systematic_fraction.cpp.o.d"
  "bench_systematic_fraction"
  "bench_systematic_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_systematic_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
