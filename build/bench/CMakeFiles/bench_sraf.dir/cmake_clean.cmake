file(REMOVE_RECURSE
  "CMakeFiles/bench_sraf.dir/sraf.cpp.o"
  "CMakeFiles/bench_sraf.dir/sraf.cpp.o.d"
  "bench_sraf"
  "bench_sraf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sraf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
