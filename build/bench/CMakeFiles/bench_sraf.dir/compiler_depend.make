# Empty compiler generated dependencies file for bench_sraf.
# This may be replaced when dependencies are built.
