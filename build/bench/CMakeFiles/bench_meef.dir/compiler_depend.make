# Empty compiler generated dependencies file for bench_meef.
# This may be replaced when dependencies are built.
