file(REMOVE_RECURSE
  "CMakeFiles/bench_meef.dir/meef.cpp.o"
  "CMakeFiles/bench_meef.dir/meef.cpp.o.d"
  "bench_meef"
  "bench_meef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
