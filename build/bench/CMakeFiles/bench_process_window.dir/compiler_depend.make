# Empty compiler generated dependencies file for bench_process_window.
# This may be replaced when dependencies are built.
