file(REMOVE_RECURSE
  "CMakeFiles/bench_process_window.dir/process_window.cpp.o"
  "CMakeFiles/bench_process_window.dir/process_window.cpp.o.d"
  "bench_process_window"
  "bench_process_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_process_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
