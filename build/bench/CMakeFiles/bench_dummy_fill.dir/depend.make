# Empty dependencies file for bench_dummy_fill.
# This may be replaced when dependencies are built.
