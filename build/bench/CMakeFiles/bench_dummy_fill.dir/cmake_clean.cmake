file(REMOVE_RECURSE
  "CMakeFiles/bench_dummy_fill.dir/dummy_fill.cpp.o"
  "CMakeFiles/bench_dummy_fill.dir/dummy_fill.cpp.o.d"
  "bench_dummy_fill"
  "bench_dummy_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dummy_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
