file(REMOVE_RECURSE
  "CMakeFiles/leakage_fill_test.dir/leakage_fill_test.cpp.o"
  "CMakeFiles/leakage_fill_test.dir/leakage_fill_test.cpp.o.d"
  "leakage_fill_test"
  "leakage_fill_test.pdb"
  "leakage_fill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_fill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
