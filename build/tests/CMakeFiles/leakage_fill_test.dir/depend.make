# Empty dependencies file for leakage_fill_test.
# This may be replaced when dependencies are built.
