file(REMOVE_RECURSE
  "CMakeFiles/litho_test.dir/litho_test.cpp.o"
  "CMakeFiles/litho_test.dir/litho_test.cpp.o.d"
  "litho_test"
  "litho_test.pdb"
  "litho_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
