# Empty dependencies file for litho_test.
# This may be replaced when dependencies are built.
