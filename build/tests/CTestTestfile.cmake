# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/litho_test[1]_include.cmake")
include("/root/repo/build/tests/opc_test[1]_include.cmake")
include("/root/repo/build/tests/cell_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/extensions2_test[1]_include.cmake")
include("/root/repo/build/tests/extensions3_test[1]_include.cmake")
include("/root/repo/build/tests/extensions4_test[1]_include.cmake")
include("/root/repo/build/tests/compensation_test[1]_include.cmake")
include("/root/repo/build/tests/leakage_fill_test[1]_include.cmake")
