# Empty compiler generated dependencies file for litho_explorer.
# This may be replaced when dependencies are built.
