file(REMOVE_RECURSE
  "CMakeFiles/litho_explorer.dir/litho_explorer.cpp.o"
  "CMakeFiles/litho_explorer.dir/litho_explorer.cpp.o.d"
  "litho_explorer"
  "litho_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
