# Empty compiler generated dependencies file for liberty_export.
# This may be replaced when dependencies are built.
