file(REMOVE_RECURSE
  "CMakeFiles/liberty_export.dir/liberty_export.cpp.o"
  "CMakeFiles/liberty_export.dir/liberty_export.cpp.o.d"
  "liberty_export"
  "liberty_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
