# Empty compiler generated dependencies file for context_demo.
# This may be replaced when dependencies are built.
