file(REMOVE_RECURSE
  "CMakeFiles/context_demo.dir/context_demo.cpp.o"
  "CMakeFiles/context_demo.dir/context_demo.cpp.o.d"
  "context_demo"
  "context_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
