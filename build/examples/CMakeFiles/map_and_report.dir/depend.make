# Empty dependencies file for map_and_report.
# This may be replaced when dependencies are built.
