file(REMOVE_RECURSE
  "CMakeFiles/map_and_report.dir/map_and_report.cpp.o"
  "CMakeFiles/map_and_report.dir/map_and_report.cpp.o.d"
  "map_and_report"
  "map_and_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_and_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
