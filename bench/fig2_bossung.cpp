// Figure 2 reproduction: Bossung plot -- linewidth vs defocus for dense
// (90 nm lines, 150 nm spacing) and isolated 90 nm lines, over a family of
// exposure doses.
//
// Paper: "The smiling plots correspond to dense 90nm lines with 150nm
// spacing for varying exposure dose.  The frowning plots correspond to
// 90nm isolated lines."
//
// Nominal (best-focus) CDs come from the full imaging model; the focus
// excursion uses the calibrated FocusResponse (see litho/focus_response.hpp
// for why a scalar threshold model alone cannot produce the dense smile).

#include <cstdio>

#include "litho/bossung.hpp"
#include "litho/focus_response.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Fig. 2: Bossung curves (90 nm lines; dense 150 nm "
              "spacing vs isolated) ===\n\n");

  const OpticsConfig optics;
  const LithoProcess process(optics, 90.0, 240.0);
  const PrintModel model(process, FocusResponseParams{}, 600.0);

  const auto defocus = defocus_sweep(300.0, 25);
  const std::vector<double> doses = {0.96, 1.0, 1.04};

  std::vector<Series> series;
  for (const auto& [label, s_side] :
       {std::pair{"dense", 150.0}, std::pair{"iso", 600.0}}) {
    for (double dose : doses) {
      Series s;
      s.name = std::string(label) + " dose " + fmt(dose, 2);
      for (Nm dz : defocus) {
        s.x.push_back(dz);
        s.y.push_back(model.printed_cd(90.0, s_side, s_side, dz, dose));
      }
      series.push_back(std::move(s));
    }
  }

  PlotOptions opt;
  opt.title = "Bossung: printed CD vs defocus";
  opt.x_label = "defocus (nm)";
  opt.y_label = "printed CD (nm)";
  opt.height = 24;
  std::printf("%s\n", render_plot(series, opt).c_str());

  // Curvature signs: dense must smile (positive), iso must frown.
  auto curvature = [&](const Series& s) {
    return 0.5 * ((s.y.front() - s.y[s.y.size() / 2]) +
                  (s.y.back() - s.y[s.y.size() / 2]));
  };
  std::printf("curvature checks (CD(+-300) - CD(0), nm):\n");
  for (const auto& s : series)
    std::printf("  %-16s %+7.2f  (%s)\n", s.name.c_str(), curvature(s),
                curvature(s) > 0 ? "smile" : "frown");

  // Through-focus share of the CD budget (paper: "up to 30% of the total
  // ACLV budget").
  Nm worst_focus_excursion = 0.0;
  for (const auto& s : series)
    worst_focus_excursion =
        std::max(worst_focus_excursion, std::abs(curvature(s)));
  std::printf("\nworst through-focus CD excursion: %.2f nm (%.0f%% of a "
              "+-10%% CD budget of 9 nm)\n",
              worst_focus_excursion, 100.0 * worst_focus_excursion / 9.0);

  write_text_file("fig2_bossung.csv", series_to_csv(series));
  std::printf("\nwrote fig2_bossung.csv\n");
  return 0;
}
