// Extension bench: dummy-poly fill as manufacturing-side compensation.
//
// The paper's library-OPC environment already uses dummy poly to emulate
// "a typical placement environment" (Fig. 3); production flows go one
// step further and *insert* dummy poly into the real whitespace so every
// gate sees a dense-like context.  This bench quantifies what that does
// to the methodology's numbers: the class mix collapses toward
// dense/smile, the context-induced spread narrows, and the SVA corner
// spread changes accordingly.

#include <cstdio>

#include "core/flow.hpp"
#include "core/leakage.hpp"
#include "place/dummy_fill.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace sva;

namespace {

struct Variant {
  const char* name;
  std::size_t dummies = 0;
  std::vector<std::size_t> classes;  // smile, frown, selfcomp
  double wc_ps = 0.0;
  double bc_ps = 0.0;
  double leakage_worst_na = 0.0;
};

Variant evaluate(const SvaFlow& flow, const Netlist& netlist,
                 const std::vector<InstanceNps>& nps, const char* name,
                 std::size_t dummies) {
  const Sta sta(netlist, flow.characterized(), flow.config().sta);
  const auto versions = assign_versions(nps, flow.config().bins);
  const SvaCornerScale wc(netlist, flow.context_library(), versions,
                          flow.config().budget, Corner::Worst,
                          flow.config().arc_policy, &nps);
  const SvaCornerScale bc(netlist, flow.context_library(), versions,
                          flow.config().budget, Corner::Best,
                          flow.config().arc_policy, &nps);
  Variant v;
  v.name = name;
  v.dummies = dummies;
  v.classes = wc.class_histogram();
  v.wc_ps = sta.run(wc).critical_delay_ps;
  v.bc_ps = sta.run(bc).critical_delay_ps;
  v.leakage_worst_na =
      analyze_leakage(netlist, flow.context_library(), versions, nps,
                      flow.config().budget)
          .worst_context_na;
  return v;
}

}  // namespace

int main() {
  std::printf("=== Dummy-poly fill: context homogenization ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  Table table({"Variant", "#Dummies", "Smile", "Frown", "Self-comp",
               "SVA BC (ns)", "SVA WC (ns)", "Spread (ns)",
               "WC leakage (uA)"});
  std::string csv =
      "variant,dummies,smile,frown,selfcomp,bc_ps,wc_ps,leak_na\n";

  const Netlist netlist = flow.make_benchmark("C880");
  const Placement placement = flow.make_placement(netlist);

  const auto plain_nps = extract_nps(placement);
  const DummyFillPlan plan = plan_dummy_fill(placement);
  const auto filled_nps = nps_with_fill(placement, plan);

  for (const Variant& v :
       {evaluate(flow, netlist, plain_nps, "no fill", 0),
        evaluate(flow, netlist, filled_nps, "with fill",
                 plan.count())}) {
    table.add_row({v.name, std::to_string(v.dummies),
                   std::to_string(v.classes[0]),
                   std::to_string(v.classes[1]),
                   std::to_string(v.classes[2]),
                   fmt(units::ps_to_ns(v.bc_ps), 3),
                   fmt(units::ps_to_ns(v.wc_ps), 3),
                   fmt(units::ps_to_ns(v.wc_ps - v.bc_ps), 3),
                   fmt(v.leakage_worst_na / 1000.0, 2)});
    csv += std::string(v.name) + "," + std::to_string(v.dummies) + "," +
           std::to_string(v.classes[0]) + "," +
           std::to_string(v.classes[1]) + "," +
           std::to_string(v.classes[2]) + "," + fmt(v.bc_ps, 2) + "," +
           fmt(v.wc_ps, 2) + "," + fmt(v.leakage_worst_na, 1) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: fill moves frown/self-compensated arcs "
              "toward smile (dense contexts everywhere), slows the "
              "nominal slightly (dense prints larger), trims the "
              "worst-case leakage (longer channels + no frown devices), "
              "and narrows the context spread.\n");
  write_text_file("dummy_fill.csv", csv);
  std::printf("\nwrote dummy_fill.csv\n");
  return 0;
}
