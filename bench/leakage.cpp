// Extension bench: context-aware leakage estimation.
//
// Leakage is exponential in gate length, so worst-casing every device's
// CD (as a traditional leakage sign-off does) compounds far worse than
// for delay.  This bench quantifies the leakage-estimation pessimism the
// methodology removes -- the direction the authors took in the follow-up
// work on defocus-aware leakage.

#include <cstdio>

#include "core/flow.hpp"
#include "core/leakage.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Leakage estimation: traditional vs context-aware ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  Table table({"Testcase", "Nom trad (uA)", "Nom context (uA)",
               "WC trad (uA)", "WC context (uA)", "WC pessimism ratio"});
  std::string csv =
      "testcase,nom_trad,nom_ctx,wc_trad,wc_ctx,ratio\n";

  for (const char* name : {"C432", "C880", "C1355"}) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    const auto nps = extract_nps(placement);
    const auto versions = assign_versions(nps, flow.config().bins);
    const LeakageAnalysis a =
        analyze_leakage(netlist, flow.context_library(), versions, nps,
                        flow.config().budget);
    table.add_row({name, fmt(a.nominal_traditional_na / 1000.0, 2),
                   fmt(a.nominal_context_na / 1000.0, 2),
                   fmt(a.worst_traditional_na / 1000.0, 2),
                   fmt(a.worst_context_na / 1000.0, 2),
                   fmt(a.worst_case_ratio(), 2) + "x"});
    csv += std::string(name) + "," + fmt(a.nominal_traditional_na, 1) +
           "," + fmt(a.nominal_context_na, 1) + "," +
           fmt(a.worst_traditional_na, 1) + "," +
           fmt(a.worst_context_na, 1) + "," +
           fmt(a.worst_case_ratio(), 4) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: nominal context leakage exceeds the "
              "traditional estimate (most devices print below drawn "
              "length), while worst-case context leakage sits well below "
              "the traditional worst case -- exponential sensitivity "
              "makes the CD-pessimism removal far larger for leakage "
              "than for delay.\n");
  write_text_file("leakage.csv", csv);
  std::printf("\nwrote leakage.csv\n");
  return 0;
}
