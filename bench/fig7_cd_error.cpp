// Figure 7 reproduction: distribution of per-device CD error after
// full-chip model-based OPC for the C3540 benchmark.
//
// Paper: "we measure CDs of simulated full-chip standard model-based OPC
// and compare it with simulated nominal gate length.  The distribution of
// error is given for an example circuit in Figure 7.  We see up to 20%
// variation in printed gate length after model-based OPC."
//
// Error here is (printed CD - drawn CD) / drawn CD after full-chip OPC:
// the residual the OPC flow could not correct (mask rules, model fidelity,
// finite iterations).

#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "place/fullchip_opc.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Fig. 7: post-OPC CD error distribution (C3540) ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  const Netlist netlist = flow.make_benchmark("C3540");
  const Placement placement = flow.make_placement(netlist);
  const FullChipOpcResult full =
      full_chip_opc(placement, flow.opc_engine());

  const Nm drawn = flow.config().cell_tech.gate_length;
  std::vector<double> errors;
  std::size_t failures = 0;
  for (const auto& per_gate : full.device_cd)
    for (Nm cd : per_gate) {
      if (cd <= 0.0) {
        ++failures;
        continue;
      }
      errors.push_back(100.0 * (cd - drawn) / drawn);
    }

  const Histogram hist = make_histogram(errors, -22.0, 22.0, 22);
  std::printf("%s\n",
              render_histogram(hist, "% CD error (printed vs drawn), "
                                     "devices of C3540")
                  .c_str());

  const Summary s = summarize(errors);
  std::printf("devices: %zu (print failures: %zu)\n", errors.size(),
              failures);
  std::printf("mean %+.2f%%  stddev %.2f%%  min %+.2f%%  max %+.2f%%\n",
              s.mean, s.stddev, s.min, s.max);
  std::printf("within 5%%: %s   within 10%%: %s   within 20%%: %s\n",
              fmt_pct(fraction_within(errors, 5.0), 1).c_str(),
              fmt_pct(fraction_within(errors, 10.0), 1).c_str(),
              fmt_pct(fraction_within(errors, 20.0), 1).c_str());
  std::printf("paper shape: bulk of devices within a few %%, tails up to "
              "~+-20%%\n");

  std::string csv = "error_pct\n";
  for (double e : errors) csv += fmt(e, 4) + "\n";
  write_text_file("fig7_cd_error.csv", csv);
  std::printf("\nwrote fig7_cd_error.csv\n");
  return 0;
}
