// Ablation (paper Sec. 5): the simplified methodology that skips the
// 81-version characterization.
//
// "A simplified version ... would be to ignore the impact of systematic
// variation on devices which lie at the closest to the cell boundary ...
// With some loss in accuracy (especially for smaller sized cells which
// have no or very few parallel devices), huge characterization effort
// (corresponding to 81 versions of each cell) can be avoided."
//
// Compare the full in-context flow against the simplified one per
// benchmark; report the accuracy loss and the characterization saved.

#include <cstdio>

#include "core/flow.hpp"
#include "core/simplified.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace sva;

int main() {
  std::printf("=== Ablation: full 81-version flow vs Sec. 5 simplified "
              "flow ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  Table table({"Testcase", "Full BC/WC (ns)", "Simplified BC/WC (ns)",
               "Full reduction", "Simplified reduction"});
  std::string csv =
      "testcase,full_bc,full_wc,simp_bc,simp_wc,full_red,simp_red\n";

  for (const char* name : {"C432", "C880", "C1908"}) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    const Sta sta(netlist, flow.characterized(), flow.config().sta);
    const CircuitAnalysis full = flow.analyze(netlist, placement);

    const SimplifiedCornerScale bc(netlist, flow.context_library(),
                                   flow.config().budget, Corner::Best);
    const SimplifiedCornerScale wc(netlist, flow.context_library(),
                                   flow.config().budget, Corner::Worst);
    const double simp_bc = sta.run(bc).critical_delay_ps;
    const double simp_wc = sta.run(wc).critical_delay_ps;
    const double simp_red =
        1.0 - (simp_wc - simp_bc) / full.trad_spread_ps();

    table.add_row({name,
                   fmt(units::ps_to_ns(full.sva_bc_ps), 3) + "/" +
                       fmt(units::ps_to_ns(full.sva_wc_ps), 3),
                   fmt(units::ps_to_ns(simp_bc), 3) + "/" +
                       fmt(units::ps_to_ns(simp_wc), 3),
                   fmt_pct(full.uncertainty_reduction(), 1),
                   fmt_pct(simp_red, 1)});
    csv += std::string(name) + "," + fmt(full.sva_bc_ps, 2) + "," +
           fmt(full.sva_wc_ps, 2) + "," + fmt(simp_bc, 2) + "," +
           fmt(simp_wc, 2) + "," + fmt(full.uncertainty_reduction(), 4) +
           "," + fmt(simp_red, 4) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("characterization effort: full flow needs %zu versions per "
              "cell; the simplified flow needs 1 (boundary devices keep "
              "traditional corners).\n",
              flow.config().bins.version_count());
  std::printf("expected shape: the simplified flow recovers most but not "
              "all of the reduction -- the gap is the boundary devices' "
              "context information it throws away.\n");
  write_text_file("ablation_boundary.csv", csv);
  std::printf("\nwrote ablation_boundary.csv\n");
  return 0;
}
