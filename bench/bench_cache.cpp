// Persistent characterization-cache benchmark: cold vs warm start.
//
// The flow's characterization stage -- library OPC of every master plus
// the post-OPC pitch->CD gratings -- dominates startup (tens of ms of
// litho simulation), and the 81-version context expansion rides on top of
// it.  Both are pure functions of the configuration, so the persistent
// cache snapshots them once and later runs restore bit-identical products
// from disk.  This bench quantifies the warm-start win:
//
//   * setup stage: SvaFlow construction cold (full OPC) vs warm (snapshot
//     restore), products asserted bit-identical;
//   * version expansion: characterizing every (cell, version) slot from
//     scratch vs restoring the slot snapshot;
//   * per Table-2 circuit: full startup (flow construction + the slots
//     that circuit's placement touches), cold vs warm.
//
// Writes BENCH_cache.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "engine/context_cache.hpp"
#include "place/context.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

const std::vector<std::string> kTable2Circuits = {"C432", "C880", "C1355",
                                                  "C1908", "C3540"};
constexpr int kRepeats = 3;

std::uint64_t ns_of(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

FlowConfig config_with_cache(const std::string& dir) {
  FlowConfig cfg;
  cfg.cache_dir = dir;
  return cfg;
}

/// The distinct (cell, version index) slots a placed circuit touches.
std::vector<std::pair<std::size_t, std::size_t>> touched_slots(
    const SvaFlow& flow, const std::string& name) {
  const Netlist netlist = flow.make_benchmark(name);
  const Placement placement = flow.make_placement(netlist);
  const auto versions = flow.bind_versions(placement);
  const std::size_t bins = flow.config().bins.count();
  std::set<std::pair<std::size_t, std::size_t>> slots;
  for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi)
    slots.insert({netlist.gates()[gi].cell_index,
                  version_index(versions[gi], bins)});
  return {slots.begin(), slots.end()};
}

/// Characterize the given slots on a cache; returns wall ns.
std::uint64_t time_fill(
    const ContextCache& cache,
    const std::vector<std::pair<std::size_t, std::size_t>>& slots,
    std::size_t bins) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [ci, vi] : slots)
    cache.version_lengths(ci, version_key(vi, bins));
  return ns_of(t0);
}

void assert_identical(
    const ContextCache& a, const ContextCache& b,
    const std::vector<std::pair<std::size_t, std::size_t>>& slots,
    std::size_t bins) {
  for (const auto& [ci, vi] : slots) {
    const VersionKey key = version_key(vi, bins);
    SVA_ASSERT_MSG(a.version_lengths(ci, key) == b.version_lengths(ci, key),
                   "warm slot differs from cold slot");
  }
}

}  // namespace

int main() {
  std::printf("=== Persistent characterization cache: cold vs warm ===\n\n");
  const std::string cache_dir = ".bench_cache_tmp";
  std::filesystem::remove_all(cache_dir);

  // Seed flow: cold construction that also writes the setup snapshot.
  const SvaFlow flow{config_with_cache(cache_dir)};
  SVA_ASSERT(!flow.setup_from_cache());
  const ContextLibrary& library = flow.context_library();
  const std::size_t bins = flow.config().bins.count();
  const std::size_t cells = library.characterized().cells.size();
  const std::size_t versions = library.bins().version_count();

  // --- Setup stage: library OPC + pitch characterization. ------------
  std::uint64_t setup_cold = ~0ull, setup_warm = ~0ull;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const SvaFlow cold{FlowConfig{}};
    setup_cold = std::min(setup_cold, ns_of(t0));

    const auto t1 = std::chrono::steady_clock::now();
    const SvaFlow warm{config_with_cache(cache_dir)};
    setup_warm = std::min(setup_warm, ns_of(t1));
    SVA_ASSERT(warm.setup_from_cache());
    SVA_ASSERT_MSG(warm.pitch_points().size() == cold.pitch_points().size(),
                   "warm pitch table differs");
    for (std::size_t i = 0; i < cold.pitch_points().size(); ++i)
      SVA_ASSERT_MSG(warm.pitch_points()[i].printed_cd ==
                         cold.pitch_points()[i].printed_cd,
                     "warm pitch CD differs from cold");
    for (std::size_t ci = 0; ci < cold.library_opc_results().size(); ++ci)
      SVA_ASSERT_MSG(warm.library_opc_results()[ci].device_cd ==
                         cold.library_opc_results()[ci].device_cd,
                     "warm library-OPC CDs differ from cold");
  }
  const double setup_speedup =
      static_cast<double>(setup_cold) / static_cast<double>(setup_warm);
  std::printf("setup stage (library OPC + pitch gratings):\n");
  std::printf("  cold characterize: %8.3f ms\n", setup_cold * 1e-6);
  std::printf("  warm restore:      %8.3f ms   (speedup %.1fx)\n\n",
              setup_warm * 1e-6, setup_speedup);

  // --- Version expansion: all cells x all versions. ------------------
  // Snapshot once from a fully warmed cache, then race a cold full
  // characterization against a disk restore (best of kRepeats each).
  {
    const ContextCache full(library);
    full.warm_all();
    full.save(cache_dir);
  }
  std::uint64_t lib_cold = ~0ull, lib_warm = ~0ull;
  for (int r = 0; r < kRepeats; ++r) {
    const ContextCache cold(library);
    const auto t0 = std::chrono::steady_clock::now();
    cold.warm_all();
    lib_cold = std::min(lib_cold, ns_of(t0));

    const ContextCache warm(library);
    const auto t1 = std::chrono::steady_clock::now();
    SVA_ASSERT(warm.try_load(cache_dir));
    lib_warm = std::min(lib_warm, ns_of(t1));
    SVA_ASSERT(warm.stats().disk_hits == cells * versions);
  }
  const double lib_speedup =
      static_cast<double>(lib_cold) / static_cast<double>(lib_warm);
  const auto file_size = std::filesystem::file_size(
      ContextCache(library).cache_file_path(cache_dir));
  std::printf("version expansion (%zu cells x %zu versions, %ju-byte "
              "file):\n",
              cells, versions, static_cast<std::uintmax_t>(file_size));
  std::printf("  cold characterize: %8.3f ms\n", lib_cold * 1e-6);
  std::printf("  warm restore:      %8.3f ms   (speedup %.1fx)\n\n",
              lib_warm * 1e-6, lib_speedup);

  // --- Per Table-2 circuit: full startup. ----------------------------
  // Cold: flow construction (full OPC) + characterizing the slots the
  // circuit's placement binds.  Warm: flow construction off the setup
  // snapshot + restoring that circuit's slot snapshot -- what consecutive
  // CLI runs of the same circuit actually pay.
  Table table({"Testcase", "Slots", "Cold ms", "Warm ms", "Speedup"});
  std::vector<std::string> rows_json;
  for (const std::string& name : kTable2Circuits) {
    const auto slots = touched_slots(flow, name);
    const std::string dir = cache_dir + "/" + name;
    {
      const ContextCache seed(library);
      time_fill(seed, slots, bins);
      seed.save(dir);
    }
    std::uint64_t cold_ns = ~0ull, warm_ns = ~0ull;
    for (int r = 0; r < kRepeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const SvaFlow cold{FlowConfig{}};
      const std::uint64_t cold_total =
          ns_of(t0) + time_fill(cold.context_cache(), slots, bins);
      cold_ns = std::min(cold_ns, cold_total);

      const auto t1 = std::chrono::steady_clock::now();
      const SvaFlow warm{config_with_cache(cache_dir)};
      SVA_ASSERT(warm.try_load_context_cache(dir));
      const std::uint64_t warm_total =
          ns_of(t1) + time_fill(warm.context_cache(), slots, bins);
      warm_ns = std::min(warm_ns, warm_total);
      SVA_ASSERT(warm.setup_from_cache());
      if (r == 0)
        assert_identical(cold.context_cache(), warm.context_cache(), slots,
                         bins);
    }
    const double speedup =
        static_cast<double>(cold_ns) / static_cast<double>(warm_ns);
    table.add_row({name, std::to_string(slots.size()), fmt(cold_ns * 1e-6, 3),
                   fmt(warm_ns * 1e-6, 3), fmt(speedup, 1)});
    std::string row = "{\"bench\": \"";
    row += name;
    row += "\", \"slots\": ";
    row += std::to_string(slots.size());
    row += ", \"cold_ns\": ";
    row += std::to_string(cold_ns);
    row += ", \"warm_ns\": ";
    row += std::to_string(warm_ns);
    row += ", \"speedup\": ";
    row += fmt(speedup, 2);
    row += "}";
    rows_json.push_back(row);
  }
  std::printf("%s\n", table.render().c_str());

  // --- JSON artifact. ------------------------------------------------
  std::string json = "{\n  \"bench\": \"cache\",\n  \"cells\": ";
  json += std::to_string(cells);
  json += ",\n  \"versions_per_cell\": ";
  json += std::to_string(versions);
  json += ",\n  \"setup_cold_ns\": ";
  json += std::to_string(setup_cold);
  json += ",\n  \"setup_warm_ns\": ";
  json += std::to_string(setup_warm);
  json += ",\n  \"setup_speedup\": ";
  json += fmt(setup_speedup, 2);
  json += ",\n  \"slot_file_bytes\": ";
  json += std::to_string(static_cast<std::uintmax_t>(file_size));
  json += ",\n  \"expansion_cold_ns\": ";
  json += std::to_string(lib_cold);
  json += ",\n  \"expansion_warm_ns\": ";
  json += std::to_string(lib_warm);
  json += ",\n  \"expansion_speedup\": ";
  json += fmt(lib_speedup, 2);
  json += ",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows_json.size(); ++i) {
    json += "    ";
    json += rows_json[i];
    json += (i + 1 < rows_json.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  write_text_file("BENCH_cache.json", json);
  std::printf("wrote BENCH_cache.json\n");

  std::filesystem::remove_all(cache_dir);
  return 0;
}
