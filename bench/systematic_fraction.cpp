// Quantifying the paper's Sec. 2 premise: "In reality, at least 50% of
// ACLV is systematic", and that the systematic part "can be modelled very
// accurately once a physical layout is completed".
//
// Method: full-chip OPC gives every device's true printed CD; the
// methodology's context model (library-OPC interiors + post-OPC pitch
// table for boundary devices, resolved through the measured placement
// context) predicts each device's CD without ever simulating the placed
// design.  The variance of the true CDs that the prediction explains is
// the "systematic, predictable" fraction; the residual corresponds to
// what a flow would have to carry as random budget.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "place/fullchip_opc.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Fraction of full-chip CD variation explained by the "
              "context model ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  Table table({"Testcase", "#Devices", "CD sigma (nm)",
               "Residual sigma (nm)", "Variance explained"});
  std::string csv = "testcase,devices,sigma,residual_sigma,explained\n";

  for (const char* name : {"C432", "C880", "C1355"}) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    const FullChipOpcResult full =
        full_chip_opc(placement, flow.opc_engine());
    const auto versions = flow.bind_versions(placement);

    std::vector<double> truth;
    std::vector<double> residual;
    for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
      const std::size_t ci = netlist.gates()[gi].cell_index;
      const CellMaster& master = flow.library().master(ci);
      for (std::size_t di = 0; di < master.devices().size(); ++di) {
        const Nm t = full.device_cd[gi][di];
        if (t <= 0.0) continue;
        const Nm predicted = flow.context_library().device_printed_cd(
            ci, versions[gi], di);
        truth.push_back(t);
        residual.push_back(t - predicted);
      }
    }
    const Summary s_truth = summarize(truth);
    const Summary s_res = summarize(residual);
    const double explained =
        1.0 - (s_res.stddev * s_res.stddev) /
                  (s_truth.stddev * s_truth.stddev);
    table.add_row({name, std::to_string(truth.size()),
                   fmt(s_truth.stddev, 2), fmt(s_res.stddev, 2),
                   fmt_pct(explained, 1)});
    csv += std::string(name) + "," + std::to_string(truth.size()) + "," +
           fmt(s_truth.stddev, 4) + "," + fmt(s_res.stddev, 4) + "," +
           fmt(explained, 4) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Sec. 2): 'at least 50%% of ACLV is systematic' and "
              "predictable from the layout; the explained fraction here "
              "is the reproduction of that claim within the simulated "
              "process (the residual is context the lookup model cannot "
              "see: second neighbours, row-level interactions).\n");
  write_text_file("systematic_fraction.csv", csv);
  std::printf("\nwrote systematic_fraction.csv\n");
  return 0;
}
