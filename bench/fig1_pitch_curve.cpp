// Figure 1 reproduction: printed linewidth vs pitch for an annular
// 193 nm / NA 0.7 system, drawn CD 130 nm.
//
// Paper: "The plot shows printed linewidth systematically decreases as the
// pitch increases, up to the radius of influence.  Notice the radius of
// influence of less than 600nm."
//
// We regenerate the curve with the scalar partially coherent imaging model
// (stands in for PROLITH; see DESIGN.md), print it as an ASCII plot, and
// report the two shape checks: monotone decrease up to the ROI and
// flatness beyond it.

#include <cstdio>

#include "litho/cd_model.hpp"
#include "litho/pitch_curve.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Fig. 1: printed CD vs pitch (drawn CD 130 nm, 193 nm, "
              "NA 0.7, annular) ===\n\n");

  const OpticsConfig optics;  // paper's stepper; see litho/optics.hpp
  const Nm drawn = 130.0;
  // Anchor dose-to-size on the densest pitch, as a model build would.
  const LithoProcess process(optics, drawn, 300.0);

  const auto pitches = pitch_sweep(280.0, 1300.0, 35);
  const auto curve = through_pitch_curve(process, drawn, pitches);

  Series series;
  series.name = "printed CD";
  Table table({"pitch (nm)", "printed CD (nm)", "bias vs drawn (%)"});
  for (const auto& p : curve) {
    series.x.push_back(p.pitch);
    series.y.push_back(p.cd);
    table.add_row({fmt(p.pitch, 0), fmt(p.cd, 2),
                   fmt_pct((p.cd - drawn) / drawn, 1)});
  }

  PlotOptions opt;
  opt.title = "printed CD vs pitch";
  opt.x_label = "pitch (nm)";
  opt.y_label = "printed CD (nm)";
  std::printf("%s\n", render_plot({series}, opt).c_str());
  std::printf("%s\n", table.render().c_str());

  // Shape checks against the paper's description.
  Nm cd_min_in_window = 1e9, cd_at_dense = curve.front().cd;
  Nm beyond_lo = 1e9, beyond_hi = -1e9;
  for (const auto& p : curve) {
    if (p.pitch <= 600.0) cd_min_in_window = std::min(cd_min_in_window, p.cd);
    if (p.pitch >= 700.0) {
      beyond_lo = std::min(beyond_lo, p.cd);
      beyond_hi = std::max(beyond_hi, p.cd);
    }
  }
  std::printf("shape checks:\n");
  std::printf("  CD drop dense -> ROI: %s (paper: systematic decrease)\n",
              fmt_pct((cd_at_dense - cd_min_in_window) / drawn, 1).c_str());
  std::printf("  CD band beyond ROI:   %.1f nm wide (paper: negligible "
              "influence beyond ~600 nm)\n",
              beyond_hi - beyond_lo);

  write_text_file("fig1_pitch_curve.csv", series_to_csv({series}));
  std::printf("\nwrote fig1_pitch_curve.csv\n");
  return 0;
}
