// Parallel scaling of the batch runner over the full Table 2 sweep.
//
// Runs the five-benchmark corner sweep at 1/2/4/8 threads and writes
// BENCH_parallel.json with wall times and speedups (plus the machine's
// hardware concurrency, without which the numbers are meaningless --
// speedup saturates at the physical core count).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "engine/batch.hpp"
#include "engine/metrics.hpp"
#include "engine/thread_pool.hpp"
#include "report/csv.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

const std::vector<std::string> kCircuits = {"C432", "C880", "C1355", "C1908",
                                            "C3540"};
/// Each measured batch runs the sweep this many times over (independent
/// jobs), lifting the timed region out of scheduler-noise territory.
constexpr int kReplicas = 8;

double best_wall_seconds(const SvaFlow& flow, std::size_t threads,
                         int repeats) {
  std::vector<std::string> names;
  for (int r = 0; r < kReplicas; ++r)
    names.insert(names.end(), kCircuits.begin(), kCircuits.end());
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    ThreadPool pool(threads);
    const BatchRunner runner(flow, pool);
    const BatchResult result = runner.run_names(names);
    best = std::min(best, result.wall_seconds);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== Parallel scaling: Table 2 sweep via the batch runner "
              "===\n");
  std::printf("hardware concurrency: %zu\n\n",
              ThreadPool::default_thread_count());

  const SvaFlow flow{FlowConfig{}};
  // Warm every lazily characterized (cell, version) slot once so thread
  // sweeps measure execution, not first-touch characterization.
  {
    ThreadPool pool(1);
    BatchRunner(flow, pool).run_names(kCircuits);
  }

  const int repeats = 3;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<double> walls;
  for (std::size_t threads : thread_counts)
    walls.push_back(best_wall_seconds(flow, threads, repeats));

  std::string json = "{\n";
  json += "  \"bench\": \"parallel_scaling\",\n";
  json += "  \"sweep\": \"table2\",\n";
  json += "  \"circuits\": " + std::to_string(kCircuits.size()) + ",\n";
  json += "  \"replicas\": " + std::to_string(kReplicas) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(ThreadPool::default_thread_count()) + ",\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const double speedup = walls[0] / walls[i];
    std::printf("  %2zu threads: %8.3f s  (speedup %.2fx)\n",
                thread_counts[i], walls[i], speedup);
    json += "    {\"threads\": " + std::to_string(thread_counts[i]) +
            ", \"wall_s\": " + fmt(walls[i], 4) +
            ", \"speedup\": " + fmt(speedup, 3) + "}";
    json += (i + 1 < thread_counts.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  write_text_file("BENCH_parallel.json", json);
  std::printf("\nwrote BENCH_parallel.json\n");

  std::printf("\nengine metrics:\n%s",
              MetricsRegistry::global().render().c_str());
  return 0;
}
