// Extension bench: variation-aware whitespace shaping.
//
// Paper conclusion: "Systematic nature of focus dependent CD variation
// suggests potential implications for compensating for such focus
// variation."  Here the compensation lever is placement whitespace:
// shifting cells inside their row changes neighbour spacings, hence the
// context versions and smile/frown labels of critical arcs, hence the
// worst-case corner.  The greedy optimizer trades nothing but whitespace
// position for WC delay.

#include <chrono>
#include <cstdio>

#include "core/compensation.hpp"
#include "core/flow.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace sva;

int main() {
  std::printf("=== Variation-aware whitespace shaping (WC-corner "
              "optimization) ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  Table table({"Testcase", "WC before (ns)", "WC after (ns)",
               "Improvement", "Moves", "Evaluations", "Seconds"});
  std::string csv = "testcase,before_ps,after_ps,moves,evals,seconds\n";

  for (const char* name : {"C432", "C880"}) {
    const Netlist netlist = flow.make_benchmark(name);
    Placement placement = flow.make_placement(netlist);

    const auto t0 = std::chrono::steady_clock::now();
    const CompensationResult r = compensate_placement(
        placement, flow.context_library(), flow.characterized(),
        flow.config().budget, flow.config().sta);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    table.add_row({name, fmt(units::ps_to_ns(r.wc_before_ps), 3),
                   fmt(units::ps_to_ns(r.wc_after_ps), 3),
                   fmt_pct(r.improvement(), 2),
                   std::to_string(r.moves_applied),
                   std::to_string(r.moves_evaluated), fmt(seconds, 2)});
    csv += std::string(name) + "," + fmt(r.wc_before_ps, 2) + "," +
           fmt(r.wc_after_ps, 2) + "," + std::to_string(r.moves_applied) +
           "," + std::to_string(r.moves_evaluated) + "," +
           fmt(seconds, 3) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: a modest but free WC improvement -- the "
              "optimizer only moves whitespace, it never resizes or "
              "rewires; the headroom it exploits is exactly the context "
              "dependence the paper's methodology models.\n");
  write_text_file("compensation.csv", csv);
  std::printf("\nwrote compensation.csv\n");
  return 0;
}
