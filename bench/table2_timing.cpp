// Table 2 reproduction: traditional corner timing vs systematic-variation
// aware timing for the ISCAS85 benchmarks.
//
// Paper: "Our results show that the best-case to worst-case timing spread
// is reduced by 28% to 40% in the systematic variation aware approach.
// Since majority of the devices in the layout are isolated ... the nominal
// timing improves when through-pitch variation is accounted for."
// (lvar_focus and lvar_pitch each assumed 30% of total CD variation [8].)

#include <cstdio>

#include "core/flow.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace sva;

int main() {
  std::printf("=== Table 2: traditional vs systematic-variation aware "
              "timing ===\n");
  std::printf("(lvar_pitch = lvar_focus = 30%% of total CD variation, as "
              "in the paper)\n\n");

  const SvaFlow flow{FlowConfig{}};

  Table table({"Testcase", "#Gates", "Trad Nom (ns)", "Trad BC (ns)",
               "Trad WC (ns)", "New Nom (ns)", "New BC (ns)", "New WC (ns)",
               "% Reduction in Uncertainty"});
  std::string csv =
      "testcase,gates,trad_nom,trad_bc,trad_wc,sva_nom,sva_bc,sva_wc,"
      "reduction\n";

  double min_red = 1.0, max_red = 0.0;
  for (const char* name : {"C432", "C880", "C1355", "C1908", "C3540"}) {
    const CircuitAnalysis a = flow.analyze_benchmark(name);
    table.add_row({a.name, std::to_string(a.gate_count),
                   fmt(units::ps_to_ns(a.trad_nom_ps), 3),
                   fmt(units::ps_to_ns(a.trad_bc_ps), 3),
                   fmt(units::ps_to_ns(a.trad_wc_ps), 3),
                   fmt(units::ps_to_ns(a.sva_nom_ps), 3),
                   fmt(units::ps_to_ns(a.sva_bc_ps), 3),
                   fmt(units::ps_to_ns(a.sva_wc_ps), 3),
                   fmt_pct(a.uncertainty_reduction(), 1)});
    csv += a.name + "," + std::to_string(a.gate_count) + "," +
           fmt(units::ps_to_ns(a.trad_nom_ps), 4) + "," +
           fmt(units::ps_to_ns(a.trad_bc_ps), 4) + "," +
           fmt(units::ps_to_ns(a.trad_wc_ps), 4) + "," +
           fmt(units::ps_to_ns(a.sva_nom_ps), 4) + "," +
           fmt(units::ps_to_ns(a.sva_bc_ps), 4) + "," +
           fmt(units::ps_to_ns(a.sva_wc_ps), 4) + "," +
           fmt(a.uncertainty_reduction(), 4) + "\n";
    min_red = std::min(min_red, a.uncertainty_reduction());
    max_red = std::max(max_red, a.uncertainty_reduction());
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("uncertainty reduction range: %s .. %s (paper: 28%% .. "
              "40%%)\n",
              fmt_pct(min_red, 1).c_str(), fmt_pct(max_red, 1).c_str());

  // Arc-class mix of one design, for context.
  const CircuitAnalysis c880 = flow.analyze_benchmark("C880");
  std::printf("C880 arc classes: %zu smile / %zu frown / %zu "
              "self-compensated\n",
              c880.arc_class_counts[0], c880.arc_class_counts[1],
              c880.arc_class_counts[2]);

  write_text_file("table2_timing.csv", csv);
  std::printf("\nwrote table2_timing.csv\n");
  return 0;
}
