// Extension bench (paper Sec. 6, current work): exposure-dose variation.
//
// "Exposure variation can alter the nature of devices (i.e. dense or
// isolated).  Our current work also investigates the impacts of exposure
// variation on the proposed timing methodology."
//
// Sweep the dose, count how many timing arcs change their
// smile/frown/self-compensated label, and re-evaluate the SVA corners
// under the flipped labels.  Expected shape: a few percent of arcs flip
// per 5% dose error; the corner movement stays small compared to the
// pessimism the methodology removes (i.e. the method is dose-robust).

#include <cstdio>

#include "core/exposure.hpp"
#include "core/flow.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace sva;

int main() {
  std::printf("=== Exposure-dose sensitivity of the SVA corners ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  const Netlist netlist = flow.make_benchmark("C880");
  const Placement placement = flow.make_placement(netlist);
  const Sta sta(netlist, flow.characterized(), flow.config().sta);
  const auto nps = extract_nps(placement);
  const auto versions = assign_versions(nps, flow.config().bins);

  const auto points =
      analyze_exposure(netlist, flow.context_library(), versions, nps,
                       flow.config().budget, sta);

  Table table({"Dose", "Spacing shift (nm)", "Arc flips", "Smile", "Frown",
               "Self-comp", "SVA BC (ns)", "SVA WC (ns)", "Spread (ns)"});
  std::string csv = "dose,shift_nm,flips,smile,frown,selfcomp,bc_ps,wc_ps\n";
  for (const auto& p : points) {
    table.add_row({fmt(p.dose, 2), fmt(p.spacing_shift, 2),
                   std::to_string(p.arc_flips),
                   std::to_string(p.arc_class_counts[0]),
                   std::to_string(p.arc_class_counts[1]),
                   std::to_string(p.arc_class_counts[2]),
                   fmt(units::ps_to_ns(p.sva_bc_ps), 3),
                   fmt(units::ps_to_ns(p.sva_wc_ps), 3),
                   fmt(units::ps_to_ns(p.spread_ps()), 3)});
    csv += fmt(p.dose, 3) + "," + fmt(p.spacing_shift, 3) + "," +
           std::to_string(p.arc_flips) + "," +
           std::to_string(p.arc_class_counts[0]) + "," +
           std::to_string(p.arc_class_counts[1]) + "," +
           std::to_string(p.arc_class_counts[2]) + "," +
           fmt(p.sva_bc_ps, 2) + "," + fmt(p.sva_wc_ps, 2) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("C880: %zu gates.  Expected shape: overexposure (dose > 1) "
              "thins lines, grows spacings, and pushes arcs toward "
              "isolated/frown; underexposure does the opposite.  The "
              "corner spread moves only mildly across a +-10%% dose "
              "window.\n",
              netlist.gates().size());
  write_text_file("exposure.csv", csv);
  std::printf("\nwrote exposure.csv\n");
  return 0;
}
