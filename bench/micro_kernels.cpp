// Microbenchmarks (google-benchmark) of the computational kernels that
// dominate the flows: aerial-image evaluation, OPC line correction,
// library OPC of a master, context-version binding, and full-design STA.
//
// These back the runtime claims in Table 1: full-chip OPC cost is
// (images per line) x (lines in the design), while the library-based flow
// pays (images per line) x (lines in 10 masters) once.

#include <benchmark/benchmark.h>

#include "core/flow.hpp"
#include "litho/cd_model.hpp"
#include "netlist/iscas85.hpp"
#include "opc/engine.hpp"
#include "place/context.hpp"
#include "sta/sta.hpp"

namespace {

using namespace sva;

const LithoProcess& process() {
  static const LithoProcess proc(OpticsConfig{}, 90.0, 240.0);
  return proc;
}

void BM_AerialImageDense(benchmark::State& state) {
  const auto mask = MaskPattern1D::grating(90.0, 240.0);
  const auto& proc = process();
  (void)proc.simulator().image(mask, 0.0);  // warm the TCC cache
  for (auto _ : state)
    benchmark::DoNotOptimize(proc.simulator().image(mask, 0.0));
}
BENCHMARK(BM_AerialImageDense);

void BM_AerialImageSupercell(benchmark::State& state) {
  const auto mask = MaskPattern1D::local_context(
      90.0, {{200.0, 90.0}}, {{350.0, 90.0}}, LithoProcess::kSupercellPeriod);
  const auto& proc = process();
  (void)proc.simulator().image(mask, 0.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(proc.simulator().image(mask, 0.0));
}
BENCHMARK(BM_AerialImageSupercell);

void BM_PrintedCd(benchmark::State& state) {
  const auto mask = MaskPattern1D::grating(90.0, 300.0);
  const auto& proc = process();
  for (auto _ : state) benchmark::DoNotOptimize(proc.printed_cd(mask));
}
BENCHMARK(BM_PrintedCd);

void BM_OpcLineArray(benchmark::State& state) {
  const auto lines = static_cast<std::size_t>(state.range(0));
  const OpcEngine engine(process(), OpcConfig{});
  OpcProblem problem;
  for (std::size_t k = 0; k < lines; ++k) {
    OpcLine line;
    line.drawn_lo = static_cast<double>(k) * 400.0;
    line.drawn_hi = line.drawn_lo + 90.0;
    line.mask_lo = line.drawn_lo;
    line.mask_hi = line.drawn_hi;
    problem.lines.push_back(line);
  }
  for (auto _ : state) benchmark::DoNotOptimize(engine.correct(problem));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines));
}
BENCHMARK(BM_OpcLineArray)->Arg(5)->Arg(25)->Arg(100);

void BM_LibraryOpcMaster(benchmark::State& state) {
  static const CellLibrary lib = build_standard_library();
  const OpcEngine engine(process(), OpcConfig{});
  const CellMaster& nand3 = lib.by_name("NAND3_X1");
  for (auto _ : state)
    benchmark::DoNotOptimize(library_opc_cell(nand3, engine));
}
BENCHMARK(BM_LibraryOpcMaster);

void BM_NpsExtraction(benchmark::State& state) {
  static const CellLibrary lib = build_standard_library();
  static const Netlist nl = generate_iscas85_like("C880", lib);
  static const Placement placement(nl, PlacementConfig{});
  for (auto _ : state) benchmark::DoNotOptimize(extract_nps(placement));
}
BENCHMARK(BM_NpsExtraction);

void BM_StaRun(benchmark::State& state) {
  static const CellLibrary lib = build_standard_library();
  static const CharacterizedLibrary charlib = characterize_library(lib);
  static const Netlist nl = generate_iscas85_like("C1908", lib);
  static const Sta sta(nl, charlib);
  const UnitScale scale;
  for (auto _ : state) benchmark::DoNotOptimize(sta.run(scale));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.gates().size()));
}
BENCHMARK(BM_StaRun);

void BM_FlowAnalyzeC432(benchmark::State& state) {
  static const SvaFlow flow{FlowConfig{}};
  static const Netlist nl = flow.make_benchmark("C432");
  static const Placement placement = flow.make_placement(nl);
  for (auto _ : state)
    benchmark::DoNotOptimize(flow.analyze(nl, placement));
}
BENCHMARK(BM_FlowAnalyzeC432);

}  // namespace

BENCHMARK_MAIN();
