// Extension bench: Mask Error Enhancement Factor through pitch.
//
// Mask variation is one of the ACLV sources the paper lists in Sec. 2.
// MEEF quantifies how much of it reaches the wafer: near the resolution
// limit a 1 nm mask CD error prints as multiple nm of wafer CD error,
// and the amplification varies through pitch -- i.e. part of the mask
// contribution to ACLV is itself systematic through-pitch.

#include <cstdio>

#include "litho/meef.hpp"
#include "litho/pitch_curve.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== MEEF (d printed CD / d mask CD) through pitch ===\n\n");

  const OpticsConfig optics;
  const LithoProcess process(optics, 90.0, 240.0);
  const auto pitches = pitch_sweep(220.0, 900.0, 18);
  const auto points = meef_through_pitch(process, 90.0, pitches);

  Table table({"Pitch (nm)", "MEEF", "MEEF @ 120 nm defocus"});
  Series series{"MEEF", {}, {}};
  std::string csv = "pitch,meef,meef_defocus\n";
  for (const auto& p : points) {
    const double defocused =
        meef_at_pitch(process, 90.0, p.pitch, 2.0, 120.0);
    table.add_row({fmt(p.pitch, 0), fmt(p.meef, 3),
                   defocused > 0.0 ? fmt(defocused, 3) : "(fails)"});
    series.x.push_back(p.pitch);
    series.y.push_back(p.meef);
    csv += fmt(p.pitch, 0) + "," + fmt(p.meef, 4) + "," +
           fmt(defocused, 4) + "\n";
  }

  PlotOptions opt;
  opt.title = "MEEF vs pitch (90 nm lines)";
  opt.x_label = "pitch (nm)";
  opt.y_label = "MEEF";
  opt.height = 14;
  std::printf("%s\n", render_plot({series}, opt).c_str());
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: MEEF > 1 everywhere -- mask errors are "
              "amplified onto the wafer -- and varies strongly through "
              "pitch, i.e. the mask contribution to ACLV (Sec. 2) is "
              "itself partly systematic; defocus raises it further until "
              "printing fails.\n");
  write_text_file("meef.csv", csv);
  std::printf("\nwrote meef.csv\n");
  return 0;
}
