// Extension bench: lithographic process windows.
//
// Two stories the paper relies on, measured as standard litho metrics:
//
//  1. Isolated features have a far smaller depth of focus than dense ones
//     (why through-focus CD variation is systematic per iso/dense class,
//     Sec. 3.2), judged against the paper's ±300 nm focus range.
//  2. Resolution enhancement (attenuated PSM, cf. the paper's RET
//     discussion) widens the window but does not remove the asymmetry.

#include <cstdio>

#include "litho/cd_model.hpp"
#include "litho/process_window.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

/// FEM for one pitch where the mask is pre-biased so the line prints at
/// target at best focus / nominal dose (what dose-to-size calibration
/// plus OPC achieve); windows are then meaningful around the target.
FemEntry sized_fem(const LithoProcess& process, Nm target, Nm pitch,
                   bool attenuated) {
  // Bisect the mask width to size at best focus.
  auto printed = [&](Nm mask_width, Nm dz, double dose) {
    auto mask = MaskPattern1D::grating(mask_width, pitch);
    if (attenuated)
      mask = mask.with_transmission(
          MaskPattern1D::attenuated_psm_transmission());
    return process.printed_cd(mask, dz, dose).value_or(0.0);
  };
  Nm lo = 30.0, hi = pitch * 0.8;
  for (int i = 0; i < 50; ++i) {
    const Nm mid = 0.5 * (lo + hi);
    (printed(mid, 0.0, 1.0) < target ? lo : hi) = mid;
  }
  const Nm mask_width = 0.5 * (lo + hi);

  FemEntry entry;
  entry.pitch = pitch;
  entry.defocus_axis = defocus_sweep(380.0, 39);
  entry.dose_axis = {0.90, 0.92, 0.94, 0.96, 0.98, 1.0,
                     1.02, 1.04, 1.06, 1.08, 1.10};
  for (Nm dz : entry.defocus_axis)
    for (double dose : entry.dose_axis)
      entry.cd.push_back(printed(mask_width, dz, dose));
  return entry;
}

}  // namespace

int main() {
  std::printf("=== Process windows: dense vs isolated, binary vs "
              "attenuated PSM ===\n(target CD 90 nm, +-12%% tolerance; "
              "paper's focus range is +-300 nm)\n\n");

  const OpticsConfig optics;
  const LithoProcess process(optics, 90.0, 240.0);

  Table table({"Feature", "Mask", "DOF (nm)", "Exposure latitude",
               "Window defocus x dose"});
  std::string csv = "feature,mask,dof_nm,el,win_dz,win_dose\n";
  for (const auto& [feature, pitch] :
       {std::pair{"dense (150 nm space)", 240.0},
        std::pair{"isolated", 1200.0}}) {
    for (const bool att : {false, true}) {
      const FemEntry fem = sized_fem(process, 90.0, pitch, att);
      const ProcessWindow w = compute_process_window(fem, 90.0, 0.12);
      const char* mask = att ? "att. PSM 6%" : "binary";
      table.add_row({feature, mask, fmt(w.dof_at_nominal_dose, 0),
                     fmt_pct(w.exposure_latitude, 1),
                     fmt(w.best_window_defocus_span, 0) + " nm x " +
                         fmt_pct(w.best_window_dose_span, 1)});
      csv += std::string(feature) + "," + mask + "," +
             fmt(w.dof_at_nominal_dose, 1) + "," +
             fmt(w.exposure_latitude, 3) + "," +
             fmt(w.best_window_defocus_span, 1) + "," +
             fmt(w.best_window_dose_span, 3) + "\n";
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: dense windows dwarf isolated ones (the "
              "paper's smile/frown asymmetry in process-window form); "
              "attenuated PSM widens both but the asymmetry remains.\n");
  write_text_file("process_window.csv", csv);
  std::printf("\nwrote process_window.csv\n");
  return 0;
}
