// Extension bench (paper Sec. 6, future work): statistical timing with
// realistic gate-length distributions.
//
// "We also plan to further quantify such pessimism by using statistical
// timing methodology with more realistic gate length distribution based on
// iso-dense attributes and proximity spatial information, as opposed to
// the simplistic Gaussian distribution of gate length variation."
//
// We run Monte-Carlo SSTA under both models and compare their delay
// distributions against the corner analyses.  Expected shape: the naive
// Gaussian's high quantile approaches the traditional WC corner, while the
// context-aware model -- whose systematic components are deterministic and
// whose focus component self-compensates across arc classes -- is visibly
// tighter.

#include <cstdio>

#include "core/exposure.hpp"
#include "core/flow.hpp"
#include "core/statistical.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace sva;

int main() {
  std::printf("=== Statistical timing: naive Gaussian vs context-aware "
              "gate-length model ===\n\n");

  const SvaFlow flow{FlowConfig{}};
  Table table({"Testcase", "Model", "Mean (ns)", "Sigma (ps)",
               "q0.1% (ns)", "q99.9% (ns)", "Trad BC/WC (ns)",
               "SVA BC/WC (ns)"});
  std::string csv =
      "testcase,model,mean_ps,sigma_ps,q_lo_ps,q_hi_ps\n";

  for (const char* name : {"C432", "C880"}) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    const Sta sta(netlist, flow.characterized(), flow.config().sta);
    const CircuitAnalysis corners = flow.analyze(netlist, placement);
    const auto versions = flow.bind_versions(placement);

    const Nm l_nom = flow.config().cell_tech.gate_length;
    const NaiveGaussianSampler naive(netlist, flow.config().budget, l_nom);
    const SpatialGaussianSampler spatial(placement, flow.config().budget,
                                         l_nom);
    const ContextAwareSampler aware(netlist, flow.context_library(),
                                    versions, flow.config().budget,
                                    flow.config().arc_policy);

    MonteCarloConfig mc;
    mc.samples = 2000;
    for (const auto& [label, sampler] :
         {std::pair<const char*, const GateLengthSampler*>{"naive Gaussian",
                                                           &naive},
          std::pair<const char*, const GateLengthSampler*>{"spatial Gaussian",
                                                           &spatial},
          std::pair<const char*, const GateLengthSampler*>{"context-aware",
                                                           &aware}}) {
      const DelayDistribution dist = run_monte_carlo(sta, *sampler, mc);
      const Summary s = dist.summary();
      table.add_row(
          {name, label, fmt(units::ps_to_ns(s.mean), 3),
           fmt(s.stddev, 1), fmt(units::ps_to_ns(dist.quantile_ps(0.001)), 3),
           fmt(units::ps_to_ns(dist.quantile_ps(0.999)), 3),
           fmt(units::ps_to_ns(corners.trad_bc_ps), 3) + "/" +
               fmt(units::ps_to_ns(corners.trad_wc_ps), 3),
           fmt(units::ps_to_ns(corners.sva_bc_ps), 3) + "/" +
               fmt(units::ps_to_ns(corners.sva_wc_ps), 3)});
      csv += std::string(name) + "," + label + "," + fmt(s.mean, 2) + "," +
             fmt(s.stddev, 2) + "," + fmt(dist.quantile_ps(0.001), 2) +
             "," + fmt(dist.quantile_ps(0.999), 2) + "\n";
    }
  }

  std::printf("%s\n", table.render().c_str());

  // Yield view (paper motivation, ref [4]): the clock a designer could
  // sign off at 99.9% parametric yield under each model, vs the corner.
  {
    const Netlist netlist = flow.make_benchmark("C880");
    const Placement placement = flow.make_placement(netlist);
    const Sta sta(netlist, flow.characterized(), flow.config().sta);
    const CircuitAnalysis corners = flow.analyze(netlist, placement);
    const auto versions = flow.bind_versions(placement);
    const NaiveGaussianSampler naive(netlist, flow.config().budget, 90.0);
    const ContextAwareSampler aware(netlist, flow.context_library(),
                                    versions, flow.config().budget);
    MonteCarloConfig mc;
    mc.samples = 2000;
    const double p_naive =
        period_for_yield(run_monte_carlo(sta, naive, mc), 0.999);
    const double p_aware =
        period_for_yield(run_monte_carlo(sta, aware, mc), 0.999);
    std::printf("C880 sign-off clock at 99.9%% yield:\n");
    std::printf("  traditional WC corner:    %.3f ns\n",
                units::ps_to_ns(corners.trad_wc_ps));
    std::printf("  SVA WC corner:            %.3f ns (%.1f%% faster)\n",
                units::ps_to_ns(corners.sva_wc_ps),
                100.0 * (corners.trad_wc_ps - corners.sva_wc_ps) /
                    corners.trad_wc_ps);
    std::printf("  naive Gaussian yield:     %.3f ns\n",
                units::ps_to_ns(p_naive));
    std::printf("  context-aware yield:      %.3f ns (%.1f%% faster than "
                "trad corner)\n\n",
                units::ps_to_ns(p_aware),
                100.0 * (corners.trad_wc_ps - p_aware) /
                    corners.trad_wc_ps);
  }

  std::printf("expected shape: the context-aware distribution is tighter "
              "than the naive Gaussian; both stay inside the traditional "
              "corner bracket (corners also carry the non-CD process "
              "margin the statistical CD models exclude).\n");
  write_text_file("statistical.csv", csv);
  std::printf("\nwrote statistical.csv\n");
  return 0;
}
