// Ablation: context-bin granularity.
//
// Paper Sec. 3.1.2 (footnote 4): "81 is arrived as a compromise between
// accuracy and ease of implementation."  This bench quantifies that
// trade-off: 2, 3, and 5 bins per spacing parameter (16 / 81 / 625
// versions per cell) against the timing spread reduction achieved.

#include <cstdio>

#include "core/flow.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

ContextBins make_bins(int per_side) {
  switch (per_side) {
    case 2:
      return ContextBins({600.0}, {300.0, 600.0});
    case 3:
      return ContextBins{};  // the paper's scheme
    case 5:
      return ContextBins({350.0, 450.0, 550.0, 600.0},
                         {300.0, 350.0, 450.0, 550.0, 600.0});
    default:
      throw PreconditionError("unsupported bin count");
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: context-bin count (paper: 3 bins -> 81 "
              "versions) ===\n\n");

  Table table({"Bins/side", "Versions/cell", "C432 reduction",
               "C880 reduction", "C432 New Nom (ns)"});
  std::string csv = "bins,versions,c432_reduction,c880_reduction\n";

  for (int bins_per_side : {2, 3, 5}) {
    FlowConfig config;
    config.bins = make_bins(bins_per_side);
    const SvaFlow flow{config};
    const CircuitAnalysis c432 = flow.analyze_benchmark("C432");
    const CircuitAnalysis c880 = flow.analyze_benchmark("C880");
    table.add_row({std::to_string(bins_per_side),
                   std::to_string(config.bins.version_count()),
                   fmt_pct(c432.uncertainty_reduction(), 1),
                   fmt_pct(c880.uncertainty_reduction(), 1),
                   fmt(c432.sva_nom_ps / 1000.0, 3)});
    csv += std::to_string(bins_per_side) + "," +
           std::to_string(config.bins.version_count()) + "," +
           fmt(c432.uncertainty_reduction(), 4) + "," +
           fmt(c880.uncertainty_reduction(), 4) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: tiny accuracy differences across bin "
              "counts -- which is why the paper settles on 81 versions as "
              "a compromise.\n");
  write_text_file("ablation_bins.csv", csv);
  std::printf("\nwrote ablation_bins.csv\n");
  return 0;
}
