// Ablation: which systematic component buys how much?
//
// The paper's methodology has two stacked ideas: removing the
// through-pitch share (Sec. 3.1, Eq. 1) and trimming the through-focus
// share per arc class (Sec. 3.2, Eqs. 2-5).  This bench isolates them:
// pitch-only, focus-only, and the full method.

#include <cstdio>

#include "core/flow.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Ablation: pitch vs focus systematic components ===\n\n");

  struct Variant {
    const char* name;
    double pitch_share;
    double focus_share;
  };
  const Variant variants[] = {
      {"neither (context nominal only)", 0.0, 0.0},
      {"pitch only (Sec. 3.1)", 0.30, 0.0},
      {"focus only (Sec. 3.2)", 0.0, 0.30},
      {"both (full method)", 0.30, 0.30},
  };

  Table table({"Variant", "C432 reduction", "C1355 reduction"});
  std::string csv = "variant,pitch_share,focus_share,c432,c1355\n";
  for (const Variant& v : variants) {
    FlowConfig config;
    config.budget.pitch_share = v.pitch_share;
    config.budget.focus_share = v.focus_share;
    const SvaFlow flow{config};
    const CircuitAnalysis c432 = flow.analyze_benchmark("C432");
    const CircuitAnalysis c1355 = flow.analyze_benchmark("C1355");
    table.add_row({v.name, fmt_pct(c432.uncertainty_reduction(), 1),
                   fmt_pct(c1355.uncertainty_reduction(), 1)});
    csv += std::string(v.name) + "," + fmt(v.pitch_share, 2) + "," +
           fmt(v.focus_share, 2) + "," +
           fmt(c432.uncertainty_reduction(), 4) + "," +
           fmt(c1355.uncertainty_reduction(), 4) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: both components contribute; the full "
              "method reaches the paper's 28-40%% band.\n");
  write_text_file("ablation_components.csv", csv);
  std::printf("\nwrote ablation_components.csv\n");
  return 0;
}
