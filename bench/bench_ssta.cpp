// Block-based SSTA vs Monte-Carlo and vs corner methodologies.
//
// Two questions, answered per Table-2 circuit:
//
//   1. Runtime: one canonical SSTA pass against the 10k-sample
//      context-aware Monte-Carlo it replaces (expected >= 50x).
//   2. Guard-band: the traditional full-budget corner spread and the
//      paper's SVA corner spread, against the true +-3-sigma spread of
//      the delay distribution (analytical, MC-validated).  The SVA
//      corners remove the systematic pitch/focus components; the
//      fraction of the corner->SSTA gap they close is the headline
//      "spread capture" number in EXPERIMENTS.md.
//
// Corner scales here use a CD-only budget (other_process_fraction = 0)
// so corners, SSTA, and MC all describe the same variation source.
//
// Writes BENCH_ssta.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/corners.hpp"
#include "core/flow.hpp"
#include "core/scales.hpp"
#include "core/statistical.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "ssta/propagate.hpp"
#include "sta/sta.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

const std::vector<std::string> kCircuits = {"C432", "C880", "C1908"};
constexpr std::size_t kMcSamples = 10000;
constexpr int kSstaRepeats = 5;

std::uint64_t ns_of(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

int main() {
  std::printf("=== Block-based SSTA vs Monte-Carlo and corners ===\n\n");
  const SvaFlow flow{FlowConfig{}};

  // CD-only budget: what the statistical engines model, and therefore
  // the apples-to-apples basis for the corner spreads.
  CdBudget budget = flow.config().budget;
  budget.other_process_fraction = 0.0;
  const Nm l_nom = flow.library().master(0).tech().gate_length;

  Table table({"Testcase", "SSTA ms", "MC ms", "Speedup", "Trad ps",
               "SVA ps", "6-sigma ps", "Capture"});
  std::vector<std::string> rows_json;

  for (const std::string& name : kCircuits) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);
    const std::vector<VersionKey> versions = flow.bind_versions(placement);

    // --- analytical SSTA (best of kSstaRepeats, engine setup included).
    SstaVariationModel model;
    model.budget = budget;
    model.policy = flow.config().arc_policy;
    std::uint64_t ssta_ns = ~0ull;
    CanonicalDelay critical;
    for (int r = 0; r < kSstaRepeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const SstaEngine engine(netlist, flow.characterized(),
                              flow.context_library(), versions, model,
                              flow.config().sta, &flow.context_cache());
      critical = engine.run().critical;
      ssta_ns = std::min(ssta_ns, ns_of(t0));
    }

    // --- 10k-sample context-aware Monte-Carlo (one full run).
    const Sta sta(netlist, flow.characterized(), flow.config().sta);
    const ContextAwareSampler sampler(netlist, flow.context_library(),
                                      versions, budget,
                                      flow.config().arc_policy);
    MonteCarloConfig mc;
    mc.samples = kMcSamples;
    const auto t_mc = std::chrono::steady_clock::now();
    const Summary mc_summary = run_monte_carlo(sta, sampler, mc).summary();
    const std::uint64_t mc_ns = ns_of(t_mc);

    // --- corner spreads on the same CD-only budget.
    const double trad_bc =
        sta.run(TraditionalCornerScale(l_nom, budget, Corner::Best))
            .critical_delay_ps;
    const double trad_wc =
        sta.run(TraditionalCornerScale(l_nom, budget, Corner::Worst))
            .critical_delay_ps;
    const double sva_bc =
        sta.run(SvaCornerScale(netlist, flow.context_library(), versions,
                               budget, Corner::Best, flow.config().arc_policy,
                               nullptr, &flow.context_cache()))
            .critical_delay_ps;
    const double sva_wc =
        sta.run(SvaCornerScale(netlist, flow.context_library(), versions,
                               budget, Corner::Worst, flow.config().arc_policy,
                               nullptr, &flow.context_cache()))
            .critical_delay_ps;

    const double trad_spread = trad_wc - trad_bc;
    const double sva_spread = sva_wc - sva_bc;
    const double ssta_spread = 6.0 * critical.sigma_ps();
    // Fraction of the corner-vs-true-spread gap the SVA corners close.
    const double capture =
        (trad_spread - sva_spread) / (trad_spread - ssta_spread);
    const double speedup =
        static_cast<double>(mc_ns) / static_cast<double>(ssta_ns);
    const double mean_err =
        (critical.mean_ps - mc_summary.mean) / mc_summary.mean;
    const double sigma_err =
        (critical.sigma_ps() - mc_summary.stddev) / mc_summary.stddev;

    std::printf("%s: SSTA mean %s ps sigma %s ps (MC mean err %s%%, "
                "sigma err %s%%)\n",
                name.c_str(), fmt(critical.mean_ps, 1).c_str(),
                fmt(critical.sigma_ps(), 2).c_str(),
                fmt(mean_err * 100.0, 2).c_str(),
                fmt(sigma_err * 100.0, 2).c_str());
    table.add_row({name, fmt(ssta_ns * 1e-6, 2), fmt(mc_ns * 1e-6, 1),
                   fmt(speedup, 0) + "x", fmt(trad_spread, 1),
                   fmt(sva_spread, 1), fmt(ssta_spread, 1),
                   fmt_pct(capture, 1)});

    std::string row = "{\"bench\": \"";
    row += name;
    row += "\", \"ssta_ns\": ";
    row += std::to_string(ssta_ns);
    row += ", \"mc_ns\": ";
    row += std::to_string(mc_ns);
    row += ", \"speedup\": ";
    row += fmt(speedup, 1);
    row += ", \"ssta_mean_ps\": ";
    row += fmt(critical.mean_ps, 3);
    row += ", \"ssta_sigma_ps\": ";
    row += fmt(critical.sigma_ps(), 3);
    row += ", \"mc_mean_ps\": ";
    row += fmt(mc_summary.mean, 3);
    row += ", \"mc_sigma_ps\": ";
    row += fmt(mc_summary.stddev, 3);
    row += ", \"trad_spread_ps\": ";
    row += fmt(trad_spread, 3);
    row += ", \"sva_spread_ps\": ";
    row += fmt(sva_spread, 3);
    row += ", \"ssta_spread_ps\": ";
    row += fmt(ssta_spread, 3);
    row += ", \"spread_capture\": ";
    row += fmt(capture, 4);
    row += "}";
    rows_json.push_back(row);
  }

  std::printf("\n%s\n", table.render().c_str());

  std::string json = "{\n  \"bench\": \"ssta\",\n  \"mc_samples\": ";
  json += std::to_string(kMcSamples);
  json += ",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows_json.size(); ++i) {
    json += "    ";
    json += rows_json[i];
    json += (i + 1 < rows_json.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  write_text_file("BENCH_ssta.json", json);
  std::printf("wrote BENCH_ssta.json\n");
  return 0;
}
