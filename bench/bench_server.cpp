// Timing-server benchmark: warm-daemon queries vs cold CLI runs.
//
// A direct `sva-timing analyze C432` pays the full startup bill on every
// invocation -- library OPC, pitch-table characterization, context-cache
// expansion -- before the microseconds of STA it came for.  The `sva
// serve` daemon pays that bill once and keeps the SvaFlow hot, so a
// client query costs one socket round-trip plus the STA itself.  This
// bench quantifies the win for single-circuit analyze:
//
//   * cold CLI:    fresh SvaFlow construction + analyze, per invocation
//                  (no persistent cache -- the honest first-run cost);
//   * warm daemon: an in-process TimingServer on a Unix socket, one
//                  connect+request+response round-trip per query;
//   * bit-identity: the daemon's bytes must equal the direct run's
//                  (wall-time trailer aside) or the bench aborts.
//
// Two more legs measure the multi-lane executor:
//
//   * lane scaling: a batch of four distinct circuits issued by four
//                  concurrent clients against a 1-, 2-, and 4-lane
//                  daemon (result cache off, so every query really
//                  executes) -- the distinct specs hash to different
//                  lanes and run concurrently;
//   * cached replay: the same spec twice against a cache-enabled daemon;
//                  the second answer replays the stored bytes without
//                  re-execution.
//
// Writes BENCH_server.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/flow.hpp"
#include "engine/thread_pool.hpp"
#include "report/csv.hpp"
#include "server/client.hpp"
#include "server/jobs.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "util/error.hpp"

using namespace sva;

namespace {

constexpr const char* kCircuit = "C432";
constexpr int kColdRepeats = 3;
constexpr int kWarmQueries = 9;
constexpr std::size_t kThreads = 2;

std::uint64_t ns_of(const std::chrono::steady_clock::time_point& t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::uint64_t median(std::vector<std::uint64_t> ns) {
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

/// Drop the "(N circuits, T threads, X s)" wall-time trailer, the one
/// line that differs between any two runs (scripts/check.sh convention).
std::string strip_variance(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("circuits, ") != std::string::npos &&
        line.size() >= 2 && line.compare(line.size() - 2, 2, "s)") == 0)
      continue;
    out += line;
    out += '\n';
  }
  return out;
}

/// One full cold invocation: flow construction plus the analyze itself,
/// exactly the work a fresh CLI process performs (minus exec/link).
std::uint64_t time_cold_run(JobResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  SvaFlow flow{FlowConfig{}};
  ThreadPool pool(kThreads);
  AnalyzeJobSpec spec;
  spec.circuits = {kCircuit};
  JobResult result = run_analyze_job(flow, pool, spec, nullptr);
  const std::uint64_t ns = ns_of(t0);
  if (result.exit_code != 0 || !result.error.empty())
    throw Error("cold analyze failed: " + result.error);
  if (out != nullptr) *out = std::move(result);
  return ns;
}

JobResult query_daemon(const std::string& socket_path,
                       const std::string& circuit = kCircuit) {
  ServerClient client(socket_path);
  AnalyzeRequest req;
  req.spec.circuits = {circuit};
  const Frame response =
      client.call({MsgType::AnalyzeRequest, encode_analyze_request(req)});
  if (response.type != MsgType::ResultResponse)
    throw Error(std::string("daemon answered ") +
                msg_type_name(response.type));
  return decode_result_response(response.body);
}

/// An in-process daemon for the lane-scaling / cached-replay legs.
struct BenchDaemon {
  ServerConfig config;
  TimingServer server;
  std::thread serving;

  BenchDaemon(const SvaFlow& flow, ThreadPool& pool, std::size_t lanes,
              std::size_t result_cache)
      : config(make_config(lanes, result_cache)), server(flow, config) {
    serving = std::thread([this, &pool] { server.serve(pool); });
    for (int i = 0; i < 100; ++i) {
      try {
        Fd probe = unix_connect(config.socket_path);
        return;
      } catch (const SocketError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    throw Error("bench daemon never started listening");
  }
  ~BenchDaemon() {
    server.request_stop();
    serving.join();
  }

  static ServerConfig make_config(std::size_t lanes,
                                  std::size_t result_cache) {
    static int counter = 0;
    ServerConfig cfg;
    cfg.socket_path = "/tmp/sva_bench_lanes_" + std::to_string(::getpid()) +
                      "_" + std::to_string(counter++) + ".sock";
    cfg.lanes = lanes;
    cfg.result_cache_capacity = result_cache;
    return cfg;
  }
};

/// Median wall time for four concurrent clients each analyzing its own
/// circuit against an L-lane daemon (distinct specs => distinct lanes).
std::uint64_t time_lane_batch(const SvaFlow& flow, ThreadPool& pool,
                              std::size_t lanes,
                              const std::vector<std::string>& circuits,
                              int rounds) {
  BenchDaemon daemon(flow, pool, lanes, /*result_cache=*/0);
  // Untimed warmup characterizes every circuit's contexts.
  for (const std::string& c : circuits) query_daemon(daemon.config.socket_path, c);

  std::vector<std::uint64_t> round_ns;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (const std::string& c : circuits)
      clients.emplace_back(
          [&, c] { query_daemon(daemon.config.socket_path, c); });
    for (std::thread& t : clients) t.join();
    round_ns.push_back(ns_of(t0));
  }
  return median(round_ns);
}

}  // namespace

int main() {
  std::printf("=== Timing server: warm-daemon queries vs cold CLI runs ===\n\n");

  // --- cold CLI runs. -------------------------------------------------
  JobResult direct;
  std::vector<std::uint64_t> cold_ns;
  for (int i = 0; i < kColdRepeats; ++i)
    cold_ns.push_back(time_cold_run(i == 0 ? &direct : nullptr));
  const std::uint64_t cold = median(cold_ns);
  std::printf("cold CLI run (flow construction + analyze %s):\n", kCircuit);
  std::printf("  median of %d: %8.3f ms\n\n", kColdRepeats, cold * 1e-6);

  // --- warm daemon. ---------------------------------------------------
  SvaFlow flow{FlowConfig{}};
  ThreadPool pool(kThreads);
  ServerConfig config;
  config.socket_path =
      "/tmp/sva_bench_server_" + std::to_string(::getpid()) + ".sock";
  TimingServer server(flow, config);
  std::thread serving([&] { server.serve(pool); });
  for (int i = 0; i < 100; ++i) {
    try {
      Fd probe = unix_connect(config.socket_path);
      break;
    } catch (const SocketError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // One untimed query characterizes the circuit's contexts; steady-state
  // queries then measure the round-trip + hot STA alone.
  const JobResult warmup = query_daemon(config.socket_path);
  if (strip_variance(warmup.output) != strip_variance(direct.output))
    throw Error("daemon result differs from the direct run");

  std::vector<std::uint64_t> warm_ns;
  for (int i = 0; i < kWarmQueries; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const JobResult remote = query_daemon(config.socket_path);
    warm_ns.push_back(ns_of(t0));
    if (strip_variance(remote.output) != strip_variance(direct.output))
      throw Error("daemon result drifted from the direct run");
  }
  server.request_stop();
  serving.join();

  const std::uint64_t warm = median(warm_ns);
  const double speedup =
      warm > 0 ? static_cast<double>(cold) / static_cast<double>(warm) : 0.0;
  std::printf("warm daemon query (connect + request + response):\n");
  std::printf("  median of %d: %8.3f ms   (speedup %.1fx)\n\n", kWarmQueries,
              warm * 1e-6, speedup);
  std::printf("results bit-identical to the direct run "
              "(wall-time trailer aside)\n\n");

  // --- lane scaling. --------------------------------------------------
  // Four distinct circuits from four concurrent clients: the specs hash
  // to different lanes, so extra lanes buy real concurrency (bounded by
  // the shared thread pool underneath).  Result cache off: every query
  // must execute.
  const std::vector<std::string> batch = {"C432", "C499", "C880", "C1355"};
  const std::vector<std::size_t> lane_counts = {1, 2, 4};
  constexpr int kScalingRounds = 3;
  ThreadPool scaling_pool(4);
  std::printf("lane scaling (batch of %zu distinct circuits, "
              "%d-round median):\n", batch.size(), kScalingRounds);
  std::vector<std::uint64_t> lane_batch_ns;
  for (std::size_t lanes : lane_counts) {
    lane_batch_ns.push_back(
        time_lane_batch(flow, scaling_pool, lanes, batch, kScalingRounds));
    std::printf("  lanes %zu: %8.3f ms%s\n", lanes,
                lane_batch_ns.back() * 1e-6,
                lanes == 1 ? "  (baseline)"
                           : ("  (" + fmt(static_cast<double>(lane_batch_ns[0]) /
                                              static_cast<double>(
                                                  lane_batch_ns.back()),
                                          2) + "x)").c_str());
  }
  std::printf("\n");

  // --- cached replay. -------------------------------------------------
  std::uint64_t cache_miss_ns = 0, cache_hit_ns = 0;
  {
    BenchDaemon daemon(flow, scaling_pool, /*lanes=*/2, /*result_cache=*/16);
    auto t0 = std::chrono::steady_clock::now();
    const JobResult miss = query_daemon(daemon.config.socket_path);
    cache_miss_ns = ns_of(t0);
    t0 = std::chrono::steady_clock::now();
    const JobResult hit = query_daemon(daemon.config.socket_path);
    cache_hit_ns = ns_of(t0);
    // A replay is byte-identical INCLUDING the wall-time trailer.
    if (hit.output != miss.output)
      throw Error("cached replay drifted from the first answer");
  }
  std::printf("cached replay (same spec twice, result cache on):\n");
  std::printf("  first (execute): %8.3f ms   replay (cache hit): %8.3f ms\n\n",
              cache_miss_ns * 1e-6, cache_hit_ns * 1e-6);

  // --- batched frames vs N single-spec connections. -------------------
  // The same four analyze specs issued two ways against one daemon:
  // sequentially over four fresh connections, and as one BatchRequest
  // over a single connection.  The batch saves three connect/teardown
  // round-trips and lets the lanes overlap the jobs; every slot must
  // still be byte-identical to its single-connection answer (wall-time
  // trailer aside) or the bench aborts.
  std::uint64_t singles_ns = 0, batched_ns = 0;
  {
    BenchDaemon daemon(flow, scaling_pool, /*lanes=*/2, /*result_cache=*/0);
    for (const std::string& c : batch)
      query_daemon(daemon.config.socket_path, c);  // untimed warmup

    BatchRequest req;
    for (const std::string& c : batch) {
      AnalyzeRequest a;
      a.spec.circuits = {c};
      req.items.push_back({static_cast<std::uint8_t>(MsgType::AnalyzeRequest),
                           encode_analyze_request(a)});
    }
    constexpr int kBatchRounds = 5;
    std::vector<std::uint64_t> singles_rounds, batched_rounds;
    for (int r = 0; r < kBatchRounds; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      std::vector<JobResult> singles;
      for (const std::string& c : batch)
        singles.push_back(query_daemon(daemon.config.socket_path, c));
      singles_rounds.push_back(ns_of(t0));

      t0 = std::chrono::steady_clock::now();
      ServerClient client(daemon.config.socket_path);
      const Frame response =
          client.call({MsgType::BatchRequest, encode_batch_request(req)});
      batched_rounds.push_back(ns_of(t0));
      if (response.type != MsgType::BatchResponse)
        throw Error(std::string("batch answered ") +
                    msg_type_name(response.type));
      const BatchResponse decoded = decode_batch_response(response.body);
      if (decoded.slots.size() != batch.size())
        throw Error("batch returned the wrong slot count");
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (decoded.slots[i].type != MsgType::ResultResponse)
          throw Error("batch slot " + std::to_string(i) + " is not a result");
        const JobResult slot = decode_result_response(decoded.slots[i].body);
        if (strip_variance(slot.output) != strip_variance(singles[i].output))
          throw Error("batch slot " + std::to_string(i) +
                      " differs from its single-connection answer");
      }
    }
    singles_ns = median(singles_rounds);
    batched_ns = median(batched_rounds);
  }
  const double batch_speedup =
      batched_ns > 0
          ? static_cast<double>(singles_ns) / static_cast<double>(batched_ns)
          : 0.0;
  std::printf("batch of %zu specs, one connection vs %zu connections "
              "(5-round median):\n", batch.size(), batch.size());
  std::printf("  %zu single-spec connections: %8.3f ms\n", batch.size(),
              singles_ns * 1e-6);
  std::printf("  one batched connection:     %8.3f ms   (%.2fx)\n\n",
              batched_ns * 1e-6, batch_speedup);
  std::printf("batch slots bit-identical to single-connection answers "
              "(wall-time trailer aside)\n\n");

  // --- JSON artifact. -------------------------------------------------
  std::string json = "{\n  \"bench\": \"server\",\n  \"circuit\": \"";
  json += kCircuit;
  json += "\",\n  \"threads\": ";
  json += std::to_string(kThreads);
  json += ",\n  \"cold_cli_runs\": ";
  json += std::to_string(kColdRepeats);
  json += ",\n  \"cold_cli_ns\": ";
  json += std::to_string(cold);
  json += ",\n  \"warm_daemon_queries\": ";
  json += std::to_string(kWarmQueries);
  json += ",\n  \"warm_daemon_ns\": ";
  json += std::to_string(warm);
  json += ",\n  \"speedup\": ";
  json += fmt(speedup, 2);
  json += ",\n  \"lane_scaling_circuits\": ";
  json += std::to_string(batch.size());
  json += ",\n  \"lane_batch_ns\": {";
  for (std::size_t i = 0; i < lane_counts.size(); ++i) {
    json += (i == 0 ? "" : ", ");
    json += "\"" + std::to_string(lane_counts[i]) + "\": " +
            std::to_string(lane_batch_ns[i]);
  }
  json += "},\n  \"cache_miss_ns\": ";
  json += std::to_string(cache_miss_ns);
  json += ",\n  \"cache_hit_ns\": ";
  json += std::to_string(cache_hit_ns);
  json += ",\n  \"batch_specs\": ";
  json += std::to_string(batch.size());
  json += ",\n  \"single_connections_ns\": ";
  json += std::to_string(singles_ns);
  json += ",\n  \"batched_connection_ns\": ";
  json += std::to_string(batched_ns);
  json += ",\n  \"batch_speedup\": ";
  json += fmt(batch_speedup, 2);
  json += ",\n  \"bit_identical\": true\n}\n";
  write_text_file("BENCH_server.json", json);
  std::printf("wrote BENCH_server.json\n");
  return 0;
}
