// Compiled flat-STA kernel benchmark: the data-oriented program of
// sta/compiled.hpp vs the scalar netlist interpreter (Sta::run_scalar),
// plus the priority-queue incremental what-if path vs a full recompute.
//
// Every compiled wall is only reported after asserting bit-identity with
// the scalar result on the same scale -- a speedup that changed an answer
// would be worthless.  Writes BENCH_kernel.json.
//
// `--smoke` runs one small circuit once (CI sanitizer leg): compile, one
// full-graph pass per engine, identity check, no JSON artifact.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "netlist/iscas85.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "sta/compiled.hpp"
#include "sta/scale.hpp"
#include "sta/sta.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MatrixScale random_scale(const Netlist& nl, const CellLibrary& lib,
                         const std::string& tag) {
  Rng rng(tag);
  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    factors[gi].resize(lib.master(nl.gates()[gi].cell_index).arcs().size());
    for (double& f : factors[gi]) f = rng.uniform(0.85, 1.25);
  }
  return MatrixScale(std::move(factors));
}

void require_bit_identical(const StaResult& a, const StaResult& b,
                           const std::string& what) {
  bool ok = a.arrival_ps.size() == b.arrival_ps.size() &&
            std::bit_cast<std::uint64_t>(a.critical_delay_ps) ==
                std::bit_cast<std::uint64_t>(b.critical_delay_ps);
  for (std::size_t ni = 0; ok && ni < a.arrival_ps.size(); ++ni)
    ok = std::bit_cast<std::uint64_t>(a.arrival_ps[ni]) ==
             std::bit_cast<std::uint64_t>(b.arrival_ps[ni]) &&
         std::bit_cast<std::uint64_t>(a.slew_ps[ni]) ==
             std::bit_cast<std::uint64_t>(b.slew_ps[ni]);
  if (!ok) {
    std::fprintf(stderr, "BIT-IDENTITY VIOLATION: %s\n", what.c_str());
    std::exit(1);
  }
}

struct CircuitRow {
  std::string name;
  std::size_t gates = 0;
  std::size_t arcs = 0;
  double scalar_ms = 0.0;
  double compiled_ms = 0.0;
  double speedup = 0.0;
  double incr_full_ms = 0.0;   ///< full recompute per what-if
  double incr_pq_ms = 0.0;     ///< pq dirty propagation per what-if
  double incr_speedup = 0.0;
  double cone_fraction = 0.0;  ///< gates touched / total, mean
};

/// Best-of-`repeats` wall of `passes` calls to `fn` (ms per call).
template <typename Fn>
double best_wall_ms(int repeats, int passes, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_s();
    for (int p = 0; p < passes; ++p) fn();
    best = std::min(best, (now_s() - t0) * 1e3 / passes);
  }
  return best;
}

CircuitRow bench_circuit(const std::string& name, const CellLibrary& lib,
                         const CharacterizedLibrary& charlib, int repeats,
                         int passes) {
  const Netlist nl = generate_iscas85_like(name, lib);
  const Sta sta(nl, charlib);
  const MatrixScale scale = random_scale(nl, lib, "bench-" + name);

  CircuitRow row;
  row.name = name;
  row.gates = nl.gates().size();
  row.arcs = sta.compiled().arc_count();

  require_bit_identical(sta.run(scale), sta.run_scalar(scale), name);
  row.scalar_ms =
      best_wall_ms(repeats, passes, [&] { (void)sta.run_scalar(scale); });
  row.compiled_ms =
      best_wall_ms(repeats, passes, [&] { (void)sta.run(scale); });
  row.speedup = row.scalar_ms / row.compiled_ms;

  // Incremental what-if: repeated 3-gate scale edits, pq dirty cone vs
  // full recompute (what the ECO candidate loop pays per candidate).
  Rng rng("incr-" + name);
  std::vector<std::vector<double>> factors(nl.gates().size());
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi)
    factors[gi].assign(lib.master(nl.gates()[gi].cell_index).arcs().size(),
                       1.0);
  const StaResult base = sta.run(MatrixScale(factors));

  std::vector<std::vector<std::size_t>> edit_seeds;
  std::vector<MatrixScale> edit_scales;
  for (int e = 0; e < 32; ++e) {
    std::vector<std::size_t> changed;
    auto edited = factors;
    for (int k = 0; k < 3; ++k) {
      const auto gi = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nl.gates().size()) - 1));
      changed.push_back(gi);
      for (double& f : edited[gi]) f = rng.uniform(0.85, 1.25);
    }
    edit_seeds.push_back(changed);
    edit_scales.emplace_back(std::move(edited));
  }

  Counter& touched = MetricsRegistry::global().counter(
      "sta.kernel.incremental_gates_touched");
  const std::uint64_t touched0 = touched.value();
  row.incr_pq_ms = best_wall_ms(repeats, 1, [&] {
    for (std::size_t e = 0; e < edit_scales.size(); ++e)
      (void)sta.run_incremental(edit_scales[e], base, edit_seeds[e]);
  }) / static_cast<double>(edit_scales.size());
  row.incr_full_ms = best_wall_ms(repeats, 1, [&] {
    for (const MatrixScale& s : edit_scales) (void)sta.run(s);
  }) / static_cast<double>(edit_scales.size());
  row.incr_speedup = row.incr_full_ms / row.incr_pq_ms;
  row.cone_fraction =
      static_cast<double>(touched.value() - touched0) /
      static_cast<double>(repeats * edit_scales.size() * nl.gates().size());
  return row;
}

std::string row_json(const CircuitRow& r) {
  std::string j = "{\"bench\": \"" + r.name + "\"";
  j += ", \"gates\": " + std::to_string(r.gates);
  j += ", \"arcs\": " + std::to_string(r.arcs);
  j += ", \"scalar_ms\": " + fmt(r.scalar_ms, 4);
  j += ", \"compiled_ms\": " + fmt(r.compiled_ms, 4);
  j += ", \"speedup\": " + fmt(r.speedup, 2);
  j += ", \"whatif_full_ms\": " + fmt(r.incr_full_ms, 4);
  j += ", \"whatif_pq_ms\": " + fmt(r.incr_pq_ms, 4);
  j += ", \"whatif_speedup\": " + fmt(r.incr_speedup, 2);
  j += ", \"cone_fraction\": " + fmt(r.cone_fraction, 4);
  j += "}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const CellLibrary lib = build_standard_library();
  const CharacterizedLibrary charlib = characterize_library(lib);

  if (smoke) {
    const Netlist nl = generate_iscas85_like("C432", lib);
    const Sta sta(nl, charlib);
    const MatrixScale scale = random_scale(nl, lib, "smoke");
    require_bit_identical(sta.run(scale), sta.run_scalar(scale), "smoke");
    const StaResult incr =
        sta.run_incremental(scale, sta.run(scale), {0, 1, 2});
    require_bit_identical(sta.run(scale), incr, "smoke incremental");
    std::printf("smoke ok: %zu gates, %zu arcs, %zu/%zu tables unique\n",
                sta.compiled().gate_count(), sta.compiled().arc_count(),
                sta.compiled().tables_unique(),
                sta.compiled().tables_total());
    return 0;
  }

  std::printf("=== Compiled flat STA kernel vs scalar interpreter ===\n\n");
  const std::vector<std::string> circuits = {"C2670", "C5315", "C6288",
                                             "C7552"};
  Table table({"Testcase", "Gates", "Arcs", "Scalar ms", "Compiled ms",
               "Speedup", "WhatIf full ms", "WhatIf pq ms", "Speedup",
               "Cone"});
  std::vector<std::string> rows_json;
  double largest_speedup = 0.0;
  for (const std::string& name : circuits) {
    const CircuitRow row = bench_circuit(name, lib, charlib,
                                         /*repeats=*/9, /*passes=*/40);
    table.add_row({row.name, std::to_string(row.gates),
                   std::to_string(row.arcs), fmt(row.scalar_ms, 3),
                   fmt(row.compiled_ms, 3), fmt(row.speedup, 2),
                   fmt(row.incr_full_ms, 3), fmt(row.incr_pq_ms, 3),
                   fmt(row.incr_speedup, 2), fmt(row.cone_fraction, 3)});
    rows_json.push_back(row_json(row));
    largest_speedup = row.speedup;  // circuits are sorted by size
  }
  std::printf("%s\n", table.render().c_str());

  // Decomposition on the largest circuit: factor gather (virtual call +
  // matrix lookup per arc, paid identically by the scalar path) vs the
  // flat evaluate loop itself.
  {
    const Netlist nl = generate_iscas85_like("C7552", lib);
    const Sta sta(nl, charlib);
    const MatrixScale scale = random_scale(nl, lib, "bench-C7552");
    StaResult result = sta.run(scale);
    std::vector<double> factors;
    sta.compiled().gather_factors(scale, factors);
    std::vector<double> loads(result.arrival_ps.size());
    for (std::size_t ni = 0; ni < loads.size(); ++ni)
      loads[ni] = sta.net_load_ff(ni);
    const double gather_ms = best_wall_ms(
        5, 40, [&] { sta.compiled().gather_factors(scale, factors); });
    const double eval_ms = best_wall_ms(5, 40, [&] {
      sta.compiled().evaluate_span(0, sta.compiled().gate_count(),
                                   factors.data(), loads.data(), result);
    });
    std::printf("C7552 decomposition: gather %.4f ms, evaluate %.4f ms\n",
                gather_ms, eval_ms);
  }

  // Compile cost + arena stats for the largest circuit.
  const Netlist big = generate_iscas85_like("C7552", lib);
  const double t0 = now_s();
  const Sta big_sta(big, charlib);
  const double compile_ms = (now_s() - t0) * 1e3;
  std::printf("C7552 compile %.2f ms, arena %zu bytes, tables %zu/%zu "
              "unique\n",
              compile_ms, big_sta.compiled().arena_bytes(),
              big_sta.compiled().tables_unique(),
              big_sta.compiled().tables_total());

  std::string json = "{\"circuits\": [\n  ";
  for (std::size_t i = 0; i < rows_json.size(); ++i) {
    if (i) json += ",\n  ";
    json += rows_json[i];
  }
  json += "\n], \"compile_ms_largest\": " + fmt(compile_ms, 2);
  json += ", \"arena_bytes\": " +
          std::to_string(big_sta.compiled().arena_bytes());
  json += ", \"tables_unique\": " +
          std::to_string(big_sta.compiled().tables_unique());
  json += ", \"tables_total\": " +
          std::to_string(big_sta.compiled().tables_total());
  json += "}\n";
  write_text_file("BENCH_kernel.json", json);
  std::printf("wrote BENCH_kernel.json\n");

  if (largest_speedup < 5.0) {
    std::fprintf(stderr, "largest-circuit speedup %.2fx below 5x target\n",
                 largest_speedup);
    return 1;
  }
  return 0;
}
