// Ablation: arc labeling policy.
//
// Paper footnote 6: "we assume the majority determines the nature.  For
// example, if a timing arc involves two isolated and one dense device,
// then it is labeled as frowning.  Better focus-sensitivity based
// characterization is possible."  The conservative alternative labels an
// arc smile/frown only when every device agrees.

#include <cstdio>

#include "core/flow.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Ablation: arc labeling policy (majority vs "
              "conservative) ===\n\n");

  Table table({"Policy", "Testcase", "Smile", "Frown", "Self-comp",
               "Reduction"});
  std::string csv = "policy,testcase,smile,frown,selfcomp,reduction\n";

  for (const auto& [label, policy] :
       {std::pair{"majority (paper)", ArcLabelPolicy::Majority},
        std::pair{"conservative", ArcLabelPolicy::Conservative}}) {
    FlowConfig config;
    config.arc_policy = policy;
    const SvaFlow flow{config};
    for (const char* name : {"C432", "C1908"}) {
      const CircuitAnalysis a = flow.analyze_benchmark(name);
      table.add_row({label, name, std::to_string(a.arc_class_counts[0]),
                     std::to_string(a.arc_class_counts[1]),
                     std::to_string(a.arc_class_counts[2]),
                     fmt_pct(a.uncertainty_reduction(), 1)});
      csv += std::string(label) + "," + name + "," +
             std::to_string(a.arc_class_counts[0]) + "," +
             std::to_string(a.arc_class_counts[1]) + "," +
             std::to_string(a.arc_class_counts[2]) + "," +
             fmt(a.uncertainty_reduction(), 4) + "\n";
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: conservative labeling moves smile/frown "
              "arcs into self-compensated; the overall reduction changes "
              "only mildly (the classes' corner trims are similar in "
              "magnitude).\n");
  write_text_file("ablation_arclabel.csv", csv);
  std::printf("\nwrote ablation_arclabel.csv\n");
  return 0;
}
