// ECO optimizer benchmark: SVA-corner-driven vs traditional-corner-driven
// timing closure, plus candidate-pricing throughput vs thread count.
//
// Both optimizers chase the SAME clock (97% of the unoptimized SVA
// worst-case delay), so the comparison isolates the corner model: the
// traditional corner sees the identical physical design as slower and
// must buy more drive strength -- or fails to close at all -- while the
// SVA corner closes with fewer/smaller upsizes and can monetize zero-area
// re-spacing moves.  Writes BENCH_eco.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "engine/thread_pool.hpp"
#include "netlist/iscas85.hpp"
#include "opt/eco.hpp"
#include "opt/sizing.hpp"
#include "opt/trajectory.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

const std::vector<std::string> kCircuits = {"C432", "C880", "C1355"};

EcoConfig base_config(const SvaFlow& flow) {
  EcoConfig cfg;
  cfg.budget = flow.config().budget;
  cfg.arc_policy = flow.config().arc_policy;
  cfg.sta = flow.config().sta;
  return cfg;
}

EcoResult run_eco(const SvaFlow& flow, const SizedLibrary& sized,
                  const std::string& name, EcoConfig cfg, ThreadPool& pool) {
  EcoOptimizer opt(sized, generate_iscas85_like(name, sized.library()),
                   flow.config().placement, cfg);
  return opt.run(&pool);
}

std::string result_json(const EcoResult& r) {
  std::string json = "{\"bench\": \"";
  json += r.benchmark;
  json += "\", \"corner\": \"";
  json += eco_corner_mode_name(r.mode);
  json += "\", \"clock_ps\": ";
  json += fmt(r.clock_period_ps, 2);
  json += ", \"initial_ws_ps\": ";
  json += fmt(r.initial_worst_slack_ps, 3);
  json += ", \"final_ws_ps\": ";
  json += fmt(r.final_worst_slack_ps, 3);
  json += ", \"met\": ";
  json += r.met_timing ? "true" : "false";
  json += ", \"moves\": ";
  json += std::to_string(r.moves_committed());
  json += ", \"upsizes\": ";
  json += std::to_string(r.upsizes);
  json += ", \"downsizes\": ";
  json += std::to_string(r.downsizes);
  json += ", \"respaces\": ";
  json += std::to_string(r.respaces);
  json += ", \"upsize_area\": ";
  json += fmt(r.upsize_area_delta, 3);
  json += ", \"candidates\": ";
  json += std::to_string(r.candidates_evaluated);
  json += "}";
  return json;
}

}  // namespace

int main() {
  std::printf("=== Variation-aware ECO: SVA vs traditional corner ===\n\n");
  const SvaFlow flow{FlowConfig{}};
  const SizedLibrary sized(flow.library(), flow.config().electrical,
                           flow.library_opc_results(), flow.boundary_model(),
                           flow.config().bins);
  ThreadPool pool;

  // --- Closure comparison at a shared clock per circuit. -------------
  Table table({"Testcase", "Corner", "Clock ps", "WS0 ps", "WS ps", "Met",
               "Upsizes", "Respaces", "dArea"});
  std::vector<std::string> closure_json;
  std::vector<std::pair<std::string, double>> clocks;
  for (const std::string& name : kCircuits) {
    EcoConfig sva_cfg = base_config(flow);  // auto clock: 97% of SVA WC
    const EcoResult sva = run_eco(flow, sized, name, sva_cfg, pool);
    clocks.emplace_back(name, sva.clock_period_ps);

    EcoConfig trad_cfg = base_config(flow);
    trad_cfg.mode = EcoCornerMode::TraditionalWorst;
    trad_cfg.clock_period_ps = sva.clock_period_ps;
    const EcoResult trad = run_eco(flow, sized, name, trad_cfg, pool);

    for (const EcoResult* r : {&sva, &trad}) {
      std::string area = "+";
      area += fmt(r->upsize_area_delta, 2);
      table.add_row({name, eco_corner_mode_name(r->mode),
                     fmt(r->clock_period_ps, 1),
                     fmt(r->initial_worst_slack_ps, 1),
                     fmt(r->final_worst_slack_ps, 1),
                     r->met_timing ? "yes" : "NO",
                     std::to_string(r->upsizes),
                     std::to_string(r->respaces), area});
      closure_json.push_back(result_json(*r));
    }
  }
  std::printf("%s\n", table.render().c_str());

  // --- Candidate-pricing throughput vs thread count. -----------------
  // Speedups are only meaningful relative to hardware_concurrency in the
  // JSON: on a 1-core host every row measures the same serial machine.
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const int repeats = 3;
  std::vector<double> walls;
  std::vector<std::uint64_t> candidate_counts;
  for (const std::size_t threads : thread_counts) {
    double best = 1e30;
    std::uint64_t candidates = 0;
    for (int r = 0; r < repeats; ++r) {
      ThreadPool eco_pool(threads);
      EcoConfig cfg = base_config(flow);
      EcoOptimizer opt(sized,
                       generate_iscas85_like("C7552", sized.library()),
                       flow.config().placement, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const EcoResult result = opt.run(&eco_pool);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      best = std::min(best, wall);
      candidates = result.candidates_evaluated;
    }
    walls.push_back(best);
    candidate_counts.push_back(candidates);
  }
  std::printf("candidate pricing throughput (C7552, best of %d):\n",
              repeats);
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    std::printf("  %2zu threads: %8.4f s  (%8.0f candidates/s, "
                "speedup %.2fx)\n",
                thread_counts[i], walls[i],
                static_cast<double>(candidate_counts[i]) / walls[i],
                walls[0] / walls[i]);

  // --- JSON artifact. ------------------------------------------------
  std::string json = "{\n  \"bench\": \"eco\",\n  \"hardware_concurrency\": ";
  json += std::to_string(ThreadPool::default_thread_count());
  json += ",\n  \"closure\": [\n";
  for (std::size_t i = 0; i < closure_json.size(); ++i) {
    json += "    ";
    json += closure_json[i];
    json += (i + 1 < closure_json.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"throughput\": [\n";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    json += "    {\"threads\": ";
    json += std::to_string(thread_counts[i]);
    json += ", \"wall_s\": ";
    json += fmt(walls[i], 4);
    json += ", \"candidates_per_s\": ";
    json += fmt(static_cast<double>(candidate_counts[i]) / walls[i], 1);
    json += ", \"speedup\": ";
    json += fmt(walls[0] / walls[i], 3);
    json += "}";
    json += (i + 1 < thread_counts.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  write_text_file("BENCH_eco.json", json);
  std::printf("\nwrote BENCH_eco.json\n");
  return 0;
}
