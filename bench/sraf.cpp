// Extension bench (paper Secs. 2 & 6): Sub-Resolution Assist Features.
//
// "This systematic effect is somewhat mitigated by insertion of assist
// features [11] but never completely." / "We are refining our experiment
// for process technology which includes other RET such as Sub-Resolution
// Assist Features."
//
// We re-run the post-OPC through-pitch characterization with rule-based
// SRAF insertion and compare the residual iso-dense bias against the
// plain flow.  Expected shape: assist bars pull isolated lines toward the
// dense printing behaviour, shrinking -- but not eliminating -- the
// through-pitch half-range (lvar_pitch), and the bars themselves must not
// print.

#include <cstdio>

#include "litho/cd_model.hpp"
#include "opc/engine.hpp"
#include "opc/pitch_table.hpp"
#include "opc/sraf.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

OpcProblem line_array(Nm linewidth, Nm spacing, std::size_t count) {
  OpcProblem problem;
  const Nm pitch = linewidth + spacing;
  for (std::size_t k = 0; k < count; ++k) {
    OpcLine line;
    line.drawn_lo = static_cast<double>(k) * pitch;
    line.drawn_hi = line.drawn_lo + linewidth;
    line.mask_lo = line.drawn_lo;
    line.mask_hi = line.drawn_hi;
    line.tag = static_cast<long>(k);
    problem.lines.push_back(line);
  }
  return problem;
}

}  // namespace

int main() {
  std::printf("=== SRAF extension: through-pitch residual with assist "
              "features ===\n\n");

  const OpticsConfig optics;
  const LithoProcess process(optics, 90.0, 240.0);
  const OpcEngine engine(process, OpcConfig{});
  const SrafConfig sraf_config;

  Table table({"Spacing (nm)", "#SRAFs", "Raw CD plain (nm)",
               "Raw CD w/ SRAF (nm)", "SRAF prints?"});
  std::string csv = "spacing,srafs,cd_plain,cd_sraf,sraf_printed\n";

  std::vector<double> plain_cds, sraf_cds;
  const std::vector<Nm> spacings = {150, 250, 350, 450, 550, 700, 900};
  for (Nm spacing : spacings) {
    const OpcProblem plain = line_array(90.0, spacing, 7);
    const OpcProblem assisted = insert_srafs(plain, sraf_config);

    // Raw (uncorrected) printing isolates the optical effect of the
    // assist bars; the paper's mitigation claim is about this bias.
    const OpcResult r_plain = engine.measure(plain);
    const OpcResult r_sraf = engine.measure(assisted);
    const Nm cd_plain = r_plain.by_tag(3).printed_cd;
    const Nm cd_sraf = r_sraf.by_tag(3).printed_cd;

    // Do any of the assist bars print?
    bool printed = false;
    for (const auto& lr : r_sraf.lines)
      if (lr.line.tag == kSrafTag && lr.printed_cd > 20.0) printed = true;

    plain_cds.push_back(cd_plain);
    sraf_cds.push_back(cd_sraf);
    table.add_row({fmt(spacing, 0),
                   std::to_string(count_srafs(assisted)), fmt(cd_plain, 2),
                   fmt(cd_sraf, 2), printed ? "YES (violation!)" : "no"});
    csv += fmt(spacing, 0) + "," + std::to_string(count_srafs(assisted)) +
           "," + fmt(cd_plain, 3) + "," + fmt(cd_sraf, 3) + "," +
           (printed ? "1" : "0") + "\n";
  }

  auto half_range = [](const std::vector<double>& cds) {
    double lo = cds[0], hi = cds[0];
    for (double c : cds) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return (hi - lo) / 2.0;
  };

  std::printf("%s\n", table.render().c_str());
  std::printf("through-pitch half-range: plain %.2f nm  ->  with SRAFs "
              "%.2f nm\n",
              half_range(plain_cds), half_range(sraf_cds));
  std::printf("expected shape: SRAFs reduce the residual iso-dense bias "
              "but do not remove it (\"somewhat mitigated ... but never "
              "completely\"), and never print themselves.\n");
  write_text_file("sraf.csv", csv);
  std::printf("\nwrote sraf.csv\n");
  return 0;
}
