// Table 1 reproduction: library-based OPC vs full-chip OPC.
//
// Paper: "N-i% denotes % of devices with less than i% error compared to
// full-chip OPC. ... about 50% of all devices corrected in a library-based
// OPC fashion fall within 1% error while nearly all devices have a printed
// gate length within +-6% of full-chip OPC.  Library OPC Runtime is 90
// seconds for 10 masters"; full-chip runtimes grow with design size
// (~1100 s for a small design on their testbed).
//
// We compare, for every device of every placed instance, the printed CD
// predicted by library OPC (master corrected once in the dummy
// environment) against the printed CD after true full-chip OPC, and time
// both flows.  Absolute seconds differ from the paper's 2004 testbed; the
// shape to check is the accuracy profile and the runtime scaling.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "place/fullchip_opc.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace sva;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Table 1: library-based OPC vs full-chip OPC ===\n\n");

  const auto t_setup = std::chrono::steady_clock::now();
  const SvaFlow flow{FlowConfig{}};
  const double library_seconds = flow.setup_opc_seconds();
  (void)t_setup;

  Table table({"Testcase", "#Gates", "#Devices", "N-1%", "N-3%", "N-6%",
               "Periphery N-6%", "Runtime (s)"});
  std::string csv = "testcase,gates,devices,n1,n3,n6,periphery_n6,seconds\n";

  for (const char* name : {"C432", "C880", "C1355", "C1908", "C3540"}) {
    const Netlist netlist = flow.make_benchmark(name);
    const Placement placement = flow.make_placement(netlist);

    const auto t0 = std::chrono::steady_clock::now();
    const FullChipOpcResult full = full_chip_opc(placement, flow.opc_engine());
    const double seconds = seconds_since(t0);

    // Per-device error of the library-OPC prediction vs full-chip truth.
    std::vector<double> all_errors;
    std::vector<double> periphery_errors;
    for (std::size_t gi = 0; gi < netlist.gates().size(); ++gi) {
      const std::size_t ci = netlist.gates()[gi].cell_index;
      const auto& lib_cd = flow.library_opc_results()[ci].device_cd;
      const CellMaster& master = flow.library().master(ci);
      for (std::size_t di = 0; di < lib_cd.size(); ++di) {
        const Nm truth = full.device_cd[gi][di];
        if (truth <= 0.0 || lib_cd[di] <= 0.0) continue;
        const double err = 100.0 * (lib_cd[di] - truth) / truth;
        all_errors.push_back(err);
        if (master.is_boundary_device(di)) periphery_errors.push_back(err);
      }
    }

    const double n1 = fraction_within(all_errors, 1.0);
    const double n3 = fraction_within(all_errors, 3.0);
    const double n6 = fraction_within(all_errors, 6.0);
    const double pn6 = periphery_errors.empty()
                           ? 1.0
                           : fraction_within(periphery_errors, 6.0);
    table.add_row({name, std::to_string(netlist.gates().size()),
                   std::to_string(all_errors.size()), fmt_pct(n1, 1),
                   fmt_pct(n3, 1), fmt_pct(n6, 1), fmt_pct(pn6, 1),
                   fmt(seconds, 2)});
    csv += std::string(name) + "," + std::to_string(netlist.gates().size()) +
           "," + std::to_string(all_errors.size()) + "," + fmt(n1, 4) + "," +
           fmt(n3, 4) + "," + fmt(n6, 4) + "," + fmt(pn6, 4) + "," +
           fmt(seconds, 3) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Library OPC runtime: %.2f s for %zu masters (paper shape: "
              "orders of magnitude below full-chip, which scales with "
              "design size)\n",
              library_seconds, flow.library().size());
  std::printf("paper reference: ~50%% of devices within 1%%, nearly all "
              "within 6%%; most error-prone devices on the cell "
              "periphery\n");

  write_text_file("table1_opc.csv", csv);
  std::printf("\nwrote table1_opc.csv\n");
  return 0;
}
