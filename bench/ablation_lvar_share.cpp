// Ablation: sensitivity to the systematic budget shares.
//
// The paper assumes lvar_pitch = lvar_focus = 30% of the total gate-length
// variation, citing a personal communication [8].  This bench sweeps the
// (equal) share from 0% to 50% to show how the claimed 28-40% uncertainty
// reduction depends on that assumption.

#include <cstdio>

#include "core/flow.hpp"
#include "report/ascii_plot.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/strings.hpp"

using namespace sva;

int main() {
  std::printf("=== Ablation: systematic share sweep (paper assumes 30%% + "
              "30%%) ===\n\n");

  Table table({"Share each", "C432 reduction", "C880 reduction"});
  Series c432_series{"C432", {}, {}};
  Series c880_series{"C880", {}, {}};
  std::string csv = "share,c432,c880\n";

  for (double share : {0.0, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    FlowConfig config;
    config.budget.pitch_share = share;
    config.budget.focus_share = share;
    const SvaFlow flow{config};
    const CircuitAnalysis a = flow.analyze_benchmark("C432");
    const CircuitAnalysis b = flow.analyze_benchmark("C880");
    table.add_row({fmt_pct(share, 0), fmt_pct(a.uncertainty_reduction(), 1),
                   fmt_pct(b.uncertainty_reduction(), 1)});
    c432_series.x.push_back(share * 100.0);
    c432_series.y.push_back(a.uncertainty_reduction() * 100.0);
    c880_series.x.push_back(share * 100.0);
    c880_series.y.push_back(b.uncertainty_reduction() * 100.0);
    csv += fmt(share, 2) + "," + fmt(a.uncertainty_reduction(), 4) + "," +
           fmt(b.uncertainty_reduction(), 4) + "\n";
  }

  std::printf("%s\n", table.render().c_str());
  PlotOptions opt;
  opt.title = "uncertainty reduction vs systematic share";
  opt.x_label = "share of CD budget per component (%)";
  opt.y_label = "spread reduction (%)";
  opt.height = 14;
  std::printf("%s\n", render_plot({c432_series, c880_series}, opt).c_str());
  std::printf("expected shape: reduction grows monotonically with the "
              "systematic share; at the paper's 30%%+30%% it sits in the "
              "28-40%% band.\n");
  write_text_file("ablation_lvar_share.csv", csv);
  std::printf("\nwrote ablation_lvar_share.csv\n");
  return 0;
}
